"""Tests for workload persistence."""

import pytest

from repro.graph import Graph, GraphError
from repro.workloads import load_dataset
from repro.workloads.queries import QuerySetSpec, generate_query_set
from repro.workloads.store import load_workload, save_workload, workload_summary


@pytest.fixture
def workload(tmp_path):
    data = load_dataset("yeast", "tiny", seed=13)
    sets = {
        "q5S": generate_query_set(data, QuerySetSpec(5, True, 3), seed=1),
        "q5N": generate_query_set(data, QuerySetSpec(5, False, 2), seed=2),
    }
    return tmp_path / "wl", data, sets


class TestRoundTrip:
    def test_save_and_load(self, workload):
        root, data, sets = workload
        save_workload(root, data, sets)
        loaded_data, loaded_sets = load_workload(root)
        assert loaded_data == data
        assert set(loaded_sets) == {"q5S", "q5N"}
        for name in sets:
            assert len(loaded_sets[name]) == len(sets[name])
            for a, b in zip(loaded_sets[name], sets[name]):
                assert a == b

    def test_file_layout(self, workload):
        root, data, sets = workload
        save_workload(root, data, sets)
        assert (root / "data.graph").exists()
        assert (root / "manifest.txt").exists()
        assert (root / "q5S" / "q0.graph").exists()

    def test_overwrite_in_place(self, workload):
        root, data, sets = workload
        save_workload(root, data, sets)
        save_workload(root, data, {"q5S": sets["q5S"]})
        _, loaded = load_workload(root)
        assert set(loaded) == {"q5S"}


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(GraphError, match="manifest"):
            load_workload(tmp_path)

    def test_invalid_set_name(self, workload):
        root, data, sets = workload
        with pytest.raises(GraphError, match="invalid"):
            save_workload(root, data, {"bad/name": sets["q5S"]})


class TestSummary:
    def test_mentions_sets_and_sizes(self, workload):
        root, data, sets = workload
        save_workload(root, data, sets)
        text = workload_summary(root)
        assert "q5S: 3 queries" in text
        assert "q5N: 2 queries" in text
        assert f"|V|={data.num_vertices}" in text

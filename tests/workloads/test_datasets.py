"""Unit tests for dataset proxies."""

import pytest

from repro.workloads import (
    DATASETS,
    dataset_names,
    dataset_spec,
    load_dataset,
    synthetic_sweep_degree,
    synthetic_sweep_labels,
    synthetic_sweep_vertices,
)


class TestSpecs:
    def test_full_scale_matches_paper_statistics(self):
        hprd = dataset_spec("hprd", "full")
        assert hprd.num_vertices == 9460
        assert hprd.num_labels == 307
        yeast = dataset_spec("yeast", "full")
        assert yeast.num_vertices == 3112
        assert abs(yeast.avg_degree - 8.1) < 1e-9
        human = dataset_spec("human", "full")
        assert human.num_vertices == 4674
        assert human.num_labels == 44
        assert dataset_spec("wordnet", "full").num_vertices == 82670
        assert dataset_spec("dblp", "full").num_vertices == 317080

    def test_scaling_preserves_selectivity(self):
        full = dataset_spec("hprd", "full")
        small = dataset_spec("hprd", "small")
        assert small.num_vertices < full.num_vertices
        full_sel = full.num_vertices / full.num_labels
        small_sel = small.num_vertices / small.num_labels
        assert abs(full_sel - small_sel) / full_sel < 0.35

    def test_scaling_preserves_degree(self):
        assert dataset_spec("human", "small").avg_degree == DATASETS["human"].avg_degree

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_spec("imaginary")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            dataset_spec("hprd", "gigantic")

    def test_names_listed(self):
        assert "hprd" in dataset_names()
        assert "synthetic" in dataset_names()


class TestLoading:
    def test_load_tiny_graph_matches_spec(self):
        spec = dataset_spec("yeast", "tiny")
        g = load_dataset("yeast", "tiny", seed=3)
        assert g.num_vertices == spec.num_vertices
        assert g.is_connected()
        assert abs(g.average_degree() - spec.avg_degree) < 1.0

    def test_deterministic(self):
        assert load_dataset("hprd", "tiny", seed=1) == load_dataset("hprd", "tiny", seed=1)

    def test_dense_human_proxy(self):
        human = load_dataset("human", "tiny", seed=2)
        hprd = load_dataset("hprd", "tiny", seed=2)
        assert human.average_degree() > 2 * hprd.average_degree()


class TestSweeps:
    def test_vertex_sweep(self):
        graphs = synthetic_sweep_vertices([100, 200])
        assert graphs["G_100"].num_vertices == 100
        assert graphs["G_200"].num_vertices == 200

    def test_degree_sweep(self):
        graphs = synthetic_sweep_degree([4, 8], 200)
        assert abs(graphs["G_d=4"].average_degree() - 4) < 1
        assert abs(graphs["G_d=8"].average_degree() - 8) < 1

    def test_label_sweep(self):
        graphs = synthetic_sweep_labels([5, 50], 300)
        assert graphs["G_L=5"].num_labels <= 5
        assert graphs["G_L=50"].num_labels <= 50
        assert graphs["G_L=5"].num_labels < graphs["G_L=50"].num_labels

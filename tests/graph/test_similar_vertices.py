"""Tests for similar-vertex (twin) injection in dataset proxies."""

import random

import pytest

from repro.baselines import compress_data_graph
from repro.graph import Graph, synthetic_graph
from repro.graph.generators import add_similar_vertices
from repro.workloads import load_dataset


class TestAddSimilarVertices:
    def test_reaches_target_compression(self):
        rng = random.Random(1)
        base = synthetic_graph(200, 6.0, 8, seed=2)
        grown = add_similar_vertices(base, 0.3, rng)
        ratio = compress_data_graph(grown).compression_ratio(grown)
        assert ratio >= 0.28

    def test_clones_are_real_twins(self):
        rng = random.Random(3)
        base = synthetic_graph(100, 5.0, 4, seed=4)
        grown = add_similar_vertices(base, 0.2, rng)
        # every clone (id >= base size) shares label and neighborhood with
        # at least one other vertex
        for clone in range(base.num_vertices, grown.num_vertices):
            twins = [
                v
                for v in grown.vertices()
                if v != clone
                and grown.label(v) == grown.label(clone)
                and set(grown.neighbors(v)) == set(grown.neighbors(clone))
            ]
            assert twins, clone

    def test_dense_graph_twins_survive(self):
        """The live-neighborhood fix: later clones must not break earlier
        twin pairs, even in dense graphs."""
        rng = random.Random(5)
        base = synthetic_graph(60, 20.0, 3, seed=6)
        grown = add_similar_vertices(base, 0.4, rng)
        ratio = compress_data_graph(grown).compression_ratio(grown)
        assert ratio >= 0.35

    def test_zero_fraction_is_identity(self):
        base = synthetic_graph(50, 4.0, 3, seed=7)
        assert add_similar_vertices(base, 0.0, random.Random(0)) is base

    def test_invalid_fraction(self):
        base = Graph([0], [])
        with pytest.raises(ValueError):
            add_similar_vertices(base, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            add_similar_vertices(base, -0.1, random.Random(0))


class TestDatasetCompressibility:
    def test_human_proxy_compresses_like_the_paper(self):
        """Eval-IV: Human ~40% compression ratio."""
        g = load_dataset("human", "small", seed=1)
        ratio = compress_data_graph(g).compression_ratio(g)
        assert 0.3 <= ratio <= 0.5

    def test_hprd_proxy_barely_compresses(self):
        """Eval-IV: HPRD < 5%."""
        g = load_dataset("hprd", "small", seed=1)
        ratio = compress_data_graph(g).compression_ratio(g)
        assert ratio < 0.08

    def test_degree_statistics_preserved(self):
        from repro.workloads import dataset_spec

        for name in ("human", "yeast"):
            spec = dataset_spec(name, "small")
            g = load_dataset(name, "small", seed=1)
            assert g.num_vertices == pytest.approx(spec.num_vertices, abs=3)
            assert g.average_degree() == pytest.approx(spec.avg_degree, rel=0.15)

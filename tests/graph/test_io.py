"""Unit tests for graph serialization."""

import random

import pytest

from repro.graph import (
    Graph,
    GraphError,
    LabelMap,
    dumps_edge_list,
    dumps_graph,
    load_graph,
    loads_edge_list,
    loads_graph,
    random_connected_graph,
    save_graph,
)


class TestTveFormat:
    def test_round_trip(self, small_data):
        assert loads_graph(dumps_graph(small_data)) == small_data

    def test_round_trip_random(self):
        rng = random.Random(1)
        for _ in range(10):
            g = random_connected_graph(rng.randrange(1, 15), rng.randrange(0, 10), 4, rng)
            assert loads_graph(dumps_graph(g)) == g

    def test_file_round_trip(self, tmp_path, small_data):
        path = tmp_path / "g.graph"
        save_graph(small_data, path)
        assert load_graph(path) == small_data

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\nt 2 1\n\nv 0 7\nv 1 8\ne 0 1\n"
        g = loads_graph(text)
        assert g.labels == [7, 8]
        assert g.has_edge(0, 1)

    def test_degree_field_verified(self):
        text = "t 2 1\nv 0 7 5\nv 1 8 1\ne 0 1\n"
        with pytest.raises(GraphError, match="degree"):
            loads_graph(text)

    def test_missing_header(self):
        with pytest.raises(GraphError, match="header"):
            loads_graph("v 0 1\n")

    def test_vertex_before_header(self):
        with pytest.raises(GraphError, match="before 't'"):
            loads_graph("v 0 1\nt 1 0\n")

    def test_edge_count_mismatch(self):
        with pytest.raises(GraphError, match="edges"):
            loads_graph("t 2 5\nv 0 1\nv 1 1\ne 0 1\n")

    def test_duplicate_vertex(self):
        with pytest.raises(GraphError, match="twice"):
            loads_graph("t 2 0\nv 0 1\nv 0 2\nv 1 1\n")

    def test_missing_vertex_record(self):
        with pytest.raises(GraphError, match="without"):
            loads_graph("t 2 0\nv 0 1\n")

    def test_unknown_tag(self):
        with pytest.raises(GraphError, match="unknown"):
            loads_graph("t 1 0\nv 0 1\nx 1 2\n")

    def test_vertex_id_out_of_range(self):
        with pytest.raises(GraphError, match="out of range"):
            loads_graph("t 1 0\nv 5 1\n")


class TestEdgeListFormat:
    def test_round_trip(self, small_data):
        assert loads_edge_list(dumps_edge_list(small_data)) == small_data

    def test_empty_document_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            loads_edge_list("\n \n")

    def test_isolated_vertices_survive(self):
        g = Graph([3, 4, 5], [(0, 1)])
        assert loads_edge_list(dumps_edge_list(g)) == g


class TestLabelMap:
    def test_intern_is_idempotent(self):
        lm = LabelMap()
        a = lm.intern("protein")
        b = lm.intern("gene")
        assert lm.intern("protein") == a
        assert a != b
        assert len(lm) == 2

    def test_name_round_trip(self):
        lm = LabelMap()
        idx = lm.intern("kinase")
        assert lm.name(idx) == "kinase"
        assert "kinase" in lm
        assert "other" not in lm

"""Unit tests for the Graph substrate."""

import pytest

from repro.graph import Graph, GraphError, graph_from_edge_list


class TestConstruction:
    def test_basic_counts(self):
        g = Graph([0, 1, 2], [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert len(g) == 3

    def test_empty_graph(self):
        g = Graph([], [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.is_connected()  # vacuously

    def test_single_vertex(self):
        g = Graph([5], [])
        assert g.num_vertices == 1
        assert g.degree(0) == 0
        assert g.is_connected()

    def test_adjacency_is_sorted(self):
        g = Graph([0] * 4, [(3, 0), (2, 0), (1, 0)])
        assert g.neighbors(0) == [1, 2, 3]

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            Graph([0, 1], [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphError, match="duplicate"):
            Graph([0, 1], [(0, 1), (1, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(GraphError, match="outside"):
            Graph([0, 1], [(0, 2)])

    def test_graph_from_edge_list_validates_label_count(self):
        with pytest.raises(GraphError, match="labels"):
            graph_from_edge_list(3, [0, 1], [(0, 1)])


class TestAccessors:
    def test_labels_and_degrees(self, small_data):
        assert small_data.label(0) == 0
        assert small_data.degree(0) == 3  # neighbors 1, 2, 9
        assert small_data.has_edge(0, 1)
        assert not small_data.has_edge(0, 4)
        assert small_data.has_edge(1, 0)  # symmetric

    def test_edges_iterates_each_once(self, small_data):
        edges = list(small_data.edges())
        assert len(edges) == small_data.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_label_index(self):
        g = Graph([0, 1, 0, 1, 0], [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert g.vertices_with_label(0) == [0, 2, 4]
        assert g.vertices_with_label(1) == [1, 3]
        assert g.vertices_with_label(99) == []
        assert g.label_frequency(0) == 3
        assert g.num_labels == 2

    def test_average_degree(self):
        g = Graph([0, 0, 0], [(0, 1), (1, 2), (0, 2)])
        assert g.average_degree() == 2.0
        assert Graph([], []).average_degree() == 0.0

    def test_nlf(self):
        g = Graph([0, 1, 1, 2], [(0, 1), (0, 2), (0, 3)])
        assert g.nlf(0) == {1: 2, 2: 1}
        assert g.nlf(3) == {0: 1}

    def test_mnd(self):
        g = Graph([0, 0, 0, 0], [(0, 1), (1, 2), (1, 3)])
        assert g.mnd(0) == 3  # its only neighbor (1) has degree 3
        assert g.mnd(1) == 1
        isolated = Graph([0], [])
        assert isolated.mnd(0) == 0

    def test_repr_mentions_sizes(self, small_data):
        assert "|V|=10" in repr(small_data)


class TestStructure:
    def test_induced_subgraph(self, small_data):
        sub, kept = small_data.induced_subgraph([0, 1, 2, 5])
        assert kept == [0, 1, 2, 5]
        assert sub.num_vertices == 4
        # (0,1), (1,2), (0,2) survive; 5 is isolated within the subset
        assert sub.num_edges == 3
        assert sub.degree(3) == 0
        assert [sub.label(i) for i in range(4)] == [0, 1, 2, 2]

    def test_induced_subgraph_deduplicates(self, small_data):
        sub, kept = small_data.induced_subgraph([1, 1, 0])
        assert kept == [0, 1]
        assert sub.num_edges == 1

    def test_connectivity(self):
        connected = Graph([0, 0, 0], [(0, 1), (1, 2)])
        assert connected.is_connected()
        disconnected = Graph([0, 0, 0], [(0, 1)])
        assert not disconnected.is_connected()

    def test_connected_components(self):
        g = Graph([0] * 5, [(0, 1), (2, 3)])
        assert g.connected_components() == [[0, 1], [2, 3], [4]]

    def test_bfs_tree_levels(self):
        # path 0-1-2-3 rooted at 0: levels 1,2,3,4
        g = Graph([0] * 4, [(0, 1), (1, 2), (2, 3)])
        parent, level = g.bfs_tree(0)
        assert parent == [None, 0, 1, 2]
        assert level == [1, 2, 3, 4]

    def test_bfs_tree_unreachable(self):
        g = Graph([0, 0, 0], [(0, 1)])
        parent, level = g.bfs_tree(0)
        assert parent[2] == -1
        assert level[2] == 0

    def test_equality(self):
        a = Graph([0, 1], [(0, 1)])
        b = Graph([0, 1], [(0, 1)])
        c = Graph([0, 2], [(0, 1)])
        assert a == b
        assert a != c
        assert a != "not a graph"

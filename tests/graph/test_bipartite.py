"""Tests for the Hopcroft-Karp bipartite matching substrate."""

import random

from repro.graph.bipartite import (
    has_saturating_matching,
    maximum_bipartite_matching,
    semiperfect_matching_exists,
)


def brute_force_max_matching(num_left, num_right, adjacency):
    """Exponential oracle for small instances."""
    best = 0

    def extend(u, used_right, size):
        nonlocal best
        if u == num_left:
            best = max(best, size)
            return
        extend(u + 1, used_right, size)  # leave u unmatched
        for v in adjacency[u]:
            if v not in used_right:
                used_right.add(v)
                extend(u + 1, used_right, size + 1)
                used_right.remove(v)

    extend(0, set(), 0)
    return best


class TestMaximumMatching:
    def test_perfect_matching(self):
        matched = maximum_bipartite_matching(2, 2, [[0, 1], [0]])
        assert matched == [1, 0]

    def test_unmatchable_left_vertex(self):
        matched = maximum_bipartite_matching(2, 1, [[0], [0]])
        assert sum(1 for m in matched if m is not None) == 1

    def test_empty_adjacency(self):
        assert maximum_bipartite_matching(2, 2, [[], []]) == [None, None]

    def test_augmenting_path_needed(self):
        # greedy would match 0->0 and block 1; augmenting fixes it
        matched = maximum_bipartite_matching(2, 2, [[0], [0, 1]])
        assert matched[0] == 0 and matched[1] == 1

    def test_against_brute_force(self, rng):
        for _ in range(60):
            n_left = rng.randrange(0, 6)
            n_right = rng.randrange(0, 6)
            adjacency = [
                sorted(random.Random(rng.random()).sample(range(n_right),
                       rng.randrange(0, n_right + 1)))
                for _ in range(n_left)
            ]
            matched = maximum_bipartite_matching(n_left, n_right, adjacency)
            size = sum(1 for m in matched if m is not None)
            assert size == brute_force_max_matching(n_left, n_right, adjacency)
            # the returned matching is consistent
            rights = [m for m in matched if m is not None]
            assert len(rights) == len(set(rights))
            for u, v in enumerate(matched):
                if v is not None:
                    assert v in adjacency[u]


class TestSaturation:
    def test_saturating(self):
        assert has_saturating_matching(2, 3, [[0, 1], [1, 2]])

    def test_more_left_than_right(self):
        assert not has_saturating_matching(3, 2, [[0], [1], [0, 1]])

    def test_isolated_left_vertex(self):
        assert not has_saturating_matching(2, 2, [[0, 1], []])

    def test_semiperfect_wrapper(self):
        assert semiperfect_matching_exists(
            [10, 20], [1, 2, 3], lambda a, b: (a + b) % 2 == 1
        )
        assert not semiperfect_matching_exists(
            [10, 20], [2, 4], lambda a, b: (a + b) % 2 == 1
        )

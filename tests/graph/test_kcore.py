"""Unit tests for k-core decomposition."""

import random

import pytest

from repro.graph import Graph, core_numbers, k_core_vertices, random_connected_graph, two_core_vertices


class TestCoreNumbers:
    def test_tree_has_core_one(self):
        g = Graph([0] * 5, [(0, 1), (0, 2), (2, 3), (2, 4)])
        assert core_numbers(g) == [1, 1, 1, 1, 1]

    def test_cycle_has_core_two(self):
        g = Graph([0] * 4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert core_numbers(g) == [2, 2, 2, 2]

    def test_clique_core(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        g = Graph([0] * 5, edges)
        assert core_numbers(g) == [4] * 5

    def test_pendant_off_triangle(self):
        g = Graph([0] * 4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert core_numbers(g) == [2, 2, 2, 1]

    def test_empty_graph(self):
        assert core_numbers(Graph([], [])) == []

    def test_isolated_vertices(self):
        g = Graph([0, 0, 0], [(0, 1)])
        assert core_numbers(g) == [1, 1, 0]


class TestTwoCore:
    def test_matches_general_k_core(self):
        rng = random.Random(3)
        for _ in range(30):
            g = random_connected_graph(rng.randrange(2, 30), rng.randrange(0, 25), 3, rng)
            assert two_core_vertices(g) == k_core_vertices(g, 2)

    def test_tree_two_core_is_empty(self):
        g = Graph([0] * 4, [(0, 1), (1, 2), (1, 3)])
        assert two_core_vertices(g) == []

    def test_paper_figure4_two_core(self):
        from repro.workloads.paper_graphs import figure4_query

        query, ids = figure4_query()
        core = two_core_vertices(query)
        assert sorted(core) == sorted([ids["u0"], ids["u1"], ids["u2"]])

    def test_two_core_is_fixpoint(self):
        """Every 2-core vertex keeps >= 2 neighbors inside the core."""
        rng = random.Random(9)
        for _ in range(20):
            g = random_connected_graph(rng.randrange(3, 25), rng.randrange(0, 15), 2, rng)
            core = set(two_core_vertices(g))
            for v in core:
                inside = sum(1 for w in g.neighbors(v) if w in core)
                assert inside >= 2

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            k_core_vertices(Graph([0], []), -1)

"""Tests for edge-labeled matching via the subdivision reduction."""

import random
from itertools import permutations

import pytest

from repro.baselines import VF2Match
from repro.graph import GraphError
from repro.graph.edge_labeled import (
    EdgeLabeledGraph,
    match_edge_labeled,
    reduce_pair,
    subdivide,
    validate_edge_labeled_embedding,
)


def brute_force_edge_labeled(query, data):
    """Tiny-instance oracle by exhaustive permutation."""
    results = set()
    for perm in permutations(range(data.num_vertices), query.num_vertices):
        if validate_edge_labeled_embedding(query, data, perm):
            results.add(perm)
    return results


def random_edge_labeled(rng, max_vertices=7, num_vlabels=2, num_elabels=2):
    n = rng.randrange(2, max_vertices)
    vlabels = [rng.randrange(num_vlabels) for _ in range(n)]
    edges = []
    for v in range(1, n):
        edges.append((rng.randrange(v), v, rng.randrange(num_elabels)))
    existing = {(min(u, v), max(u, v)) for u, v, _ in edges}
    for _ in range(rng.randrange(0, 5)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and (min(u, v), max(u, v)) not in existing:
            existing.add((min(u, v), max(u, v)))
            edges.append((u, v, rng.randrange(num_elabels)))
    return EdgeLabeledGraph(tuple(vlabels), tuple(edges))


class TestConstruction:
    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            EdgeLabeledGraph((0, 1), ((0, 0, 5),))

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphError):
            EdgeLabeledGraph((0, 1), ((0, 1, 5), (1, 0, 6)))

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            EdgeLabeledGraph((0,), ((0, 3, 1),))


class TestSubdivision:
    def test_shape(self):
        g = EdgeLabeledGraph((0, 1, 0), ((0, 1, 7), (1, 2, 8)))
        query_red, data_red = reduce_pair(g, g)
        reduced = query_red.graph
        assert reduced.num_vertices == 3 + 2       # + one vertex per edge
        assert reduced.num_edges == 2 * 2          # each edge split in two
        # edge vertices carry fresh labels above the vertex alphabet
        for x in query_red.edge_vertex_of.values():
            assert reduced.label(x) > max(g.vertex_labels)

    def test_same_edge_label_same_vertex_label(self):
        g = EdgeLabeledGraph((0, 1, 0), ((0, 1, 7), (1, 2, 7)))
        red, _ = reduce_pair(g, g)
        xs = list(red.edge_vertex_of.values())
        assert red.graph.label(xs[0]) == red.graph.label(xs[1])

    def test_shared_alphabet_across_pair(self):
        q = EdgeLabeledGraph((0, 1), ((0, 1, 9),))
        d = EdgeLabeledGraph((0, 1, 1), ((0, 1, 9), (0, 2, 3)))
        rq, rd = reduce_pair(q, d)
        q_edge_label = rq.graph.label(rq.edge_vertex_of[(0, 1)])
        d_edge_label = rd.graph.label(rd.edge_vertex_of[(0, 1)])
        assert q_edge_label == d_edge_label


class TestMatching:
    def test_edge_label_distinguishes(self):
        # same topology, different edge labels
        query = EdgeLabeledGraph((0, 1), ((0, 1, 5),))
        data = EdgeLabeledGraph((0, 1, 1), ((0, 1, 5), (0, 2, 6)))
        got = set(match_edge_labeled(query, data))
        assert got == {(0, 1)}  # (0, 2) has the wrong edge label

    def test_matches_brute_force(self, rng):
        for _ in range(25):
            query = random_edge_labeled(rng, max_vertices=5)
            data = random_edge_labeled(rng, max_vertices=7)
            got = set(match_edge_labeled(query, data))
            assert got == brute_force_edge_labeled(query, data)

    def test_alternative_matcher_factory(self):
        query = EdgeLabeledGraph((0, 1), ((0, 1, 5),))
        data = EdgeLabeledGraph((0, 1), ((0, 1, 5),))
        got = set(match_edge_labeled(query, data, matcher_factory=VF2Match))
        assert got == {(0, 1)}

    def test_limit(self, rng):
        query = EdgeLabeledGraph((0, 1), ((0, 1, 5),))
        data = EdgeLabeledGraph(
            (0, 1, 1, 1), ((0, 1, 5), (0, 2, 5), (0, 3, 5))
        )
        assert len(list(match_edge_labeled(query, data, limit=2))) == 2

    def test_validator_rejects_bad_mappings(self):
        query = EdgeLabeledGraph((0, 1), ((0, 1, 5),))
        data = EdgeLabeledGraph((0, 1), ((0, 1, 6),))
        assert not validate_edge_labeled_embedding(query, data, (0, 1))
        assert not validate_edge_labeled_embedding(query, data, (0, 0))

"""Tests for directed matching via the tail/head gadget reduction."""

from itertools import permutations

import pytest

from repro.graph import GraphError
from repro.graph.directed import (
    DiGraph,
    match_directed,
    reduce_directed_pair,
    validate_directed_embedding,
)


def brute_force_directed(query, data):
    results = set()
    for perm in permutations(range(data.num_vertices), query.num_vertices):
        if validate_directed_embedding(query, data, perm):
            results.add(perm)
    return results


def random_digraph(rng, max_vertices=6, num_vlabels=2, num_alabels=2):
    n = rng.randrange(2, max_vertices)
    vlabels = [rng.randrange(num_vlabels) for _ in range(n)]
    arcs = []
    seen = set()
    # weakly-connected backbone
    for v in range(1, n):
        u = rng.randrange(v)
        if rng.random() < 0.5:
            u, v2 = u, v
        else:
            u, v2 = v, u
        arcs.append((u, v2, rng.randrange(num_alabels)))
        seen.add((u, v2))
    for _ in range(rng.randrange(0, 4)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            arcs.append((u, v, rng.randrange(num_alabels)))
    return DiGraph(tuple(vlabels), tuple(arcs))


class TestConstruction:
    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            DiGraph((0,), ((0, 0, 1),))

    def test_rejects_duplicate_arc(self):
        with pytest.raises(GraphError):
            DiGraph((0, 1), ((0, 1, 1), (0, 1, 2)))

    def test_antiparallel_arcs_allowed(self):
        g = DiGraph((0, 1), ((0, 1, 1), (1, 0, 1)))
        assert len(g.arcs) == 2


class TestReduction:
    def test_gadget_shape(self):
        g = DiGraph((0, 1), ((0, 1, 5),))
        red, _ = reduce_directed_pair(g, g)
        assert red.graph.num_vertices == 2 + 2   # tail + head
        assert red.graph.num_edges == 3
        # tail and head carry distinct fresh labels
        tail_label = red.graph.label(2)
        head_label = red.graph.label(3)
        assert tail_label != head_label
        assert min(tail_label, head_label) > 1


class TestMatching:
    def test_direction_matters(self):
        query = DiGraph((0, 1), ((0, 1, 0),))
        data = DiGraph((0, 1), ((1, 0, 0),))  # reversed arc
        assert list(match_directed(query, data)) == []

    def test_forward_arc_matches(self):
        query = DiGraph((0, 1), ((0, 1, 0),))
        data = DiGraph((0, 1, 1), ((0, 1, 0), (2, 0, 0)))
        assert set(match_directed(query, data)) == {(0, 1)}

    def test_arc_label_matters(self):
        query = DiGraph((0, 1), ((0, 1, 7),))
        data = DiGraph((0, 1), ((0, 1, 8),))
        assert list(match_directed(query, data)) == []

    def test_antiparallel_pair(self):
        query = DiGraph((0, 0), ((0, 1, 0), (1, 0, 0)))
        data = DiGraph((0, 0, 0), ((0, 1, 0), (1, 0, 0), (1, 2, 0)))
        got = set(match_directed(query, data))
        assert got == {(0, 1), (1, 0)}

    def test_matches_brute_force(self, rng):
        for _ in range(20):
            query = random_digraph(rng, max_vertices=4)
            data = random_digraph(rng, max_vertices=6)
            got = set(match_directed(query, data))
            assert got == brute_force_directed(query, data)

    def test_limit(self):
        query = DiGraph((0, 1), ((0, 1, 0),))
        data = DiGraph((0, 1, 1, 1), ((0, 1, 0), (0, 2, 0), (0, 3, 0)))
        assert len(list(match_directed(query, data, limit=2))) == 2

    def test_directed_triangle_vs_cycle(self):
        """A directed 3-cycle embeds in a directed 3-cycle, rotated."""
        cycle = DiGraph((0, 0, 0), ((0, 1, 0), (1, 2, 0), (2, 0, 0)))
        got = set(match_directed(cycle, cycle))
        assert got == {(0, 1, 2), (1, 2, 0), (2, 0, 1)}

"""Unit tests for graph and query generators."""

import random

import pytest

from repro.graph import (
    Graph,
    GraphError,
    power_law_labels,
    random_connected_graph,
    random_spanning_tree_edges,
    random_walk_query,
    relabel,
    synthetic_graph,
)


class TestPowerLawLabels:
    def test_length_and_range(self):
        rng = random.Random(1)
        labels = power_law_labels(500, 10, rng)
        assert len(labels) == 500
        assert all(0 <= lab < 10 for lab in labels)

    def test_skew(self):
        """Label 0 should be strictly more frequent than label 9."""
        rng = random.Random(2)
        labels = power_law_labels(5000, 10, rng)
        assert labels.count(0) > labels.count(9)

    def test_rejects_zero_labels(self):
        with pytest.raises(ValueError):
            power_law_labels(10, 0, random.Random(0))


class TestSpanningTree:
    def test_tree_edge_count_and_connectivity(self):
        rng = random.Random(3)
        edges = random_spanning_tree_edges(50, rng)
        assert len(edges) == 49
        g = Graph([0] * 50, edges)
        assert g.is_connected()


class TestSyntheticGraph:
    def test_paper_default_shape(self):
        g = synthetic_graph(1000, avg_degree=8.0, num_labels=50, seed=4)
        assert g.num_vertices == 1000
        assert g.is_connected()
        assert abs(g.average_degree() - 8.0) < 0.5
        assert g.num_labels <= 50

    def test_deterministic_for_seed(self):
        a = synthetic_graph(200, 4.0, 10, seed=5)
        b = synthetic_graph(200, 4.0, 10, seed=5)
        assert a == b
        c = synthetic_graph(200, 4.0, 10, seed=6)
        assert a != c

    def test_degree_bounded_by_complete_graph(self):
        g = synthetic_graph(5, avg_degree=100.0, num_labels=2, seed=1)
        assert g.num_edges == 10  # K5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synthetic_graph(0)


class TestRandomWalkQuery:
    def test_connected_induced_subgraph(self):
        rng = random.Random(6)
        data = synthetic_graph(300, 6.0, 8, seed=7)
        for _ in range(10):
            q = random_walk_query(data, 12, rng)
            assert q.num_vertices == 12
            assert q.is_connected()

    def test_labels_come_from_data(self):
        rng = random.Random(8)
        data = synthetic_graph(100, 4.0, 5, seed=9)
        q = random_walk_query(data, 8, rng)
        data_labels = set(data.labels)
        assert set(q.labels) <= data_labels

    def test_edge_thinning_keeps_connectivity(self):
        rng = random.Random(10)
        data = synthetic_graph(300, 10.0, 4, seed=11)
        q = random_walk_query(data, 15, rng, keep_edge_probability=0.0)
        assert q.is_connected()
        assert q.num_edges == q.num_vertices - 1  # only the spanning tree

    def test_too_large_request_rejected(self):
        data = Graph([0, 0], [(0, 1)])
        with pytest.raises(GraphError):
            random_walk_query(data, 5, random.Random(0))

    def test_isolated_start_rejected(self):
        data = Graph([0, 0, 0], [(0, 1)])
        with pytest.raises(GraphError):
            random_walk_query(data, 2, random.Random(0), start=2)


class TestHelpers:
    def test_random_connected_graph_is_connected(self):
        rng = random.Random(12)
        for _ in range(20):
            g = random_connected_graph(rng.randrange(1, 20), rng.randrange(0, 10), 3, rng)
            assert g.is_connected()

    def test_relabel_preserves_topology(self):
        g = Graph([0, 0, 0], [(0, 1), (1, 2)])
        h = relabel(g, [5, 6, 7])
        assert list(h.edges()) == list(g.edges())
        assert h.labels == [5, 6, 7]

    def test_relabel_validates_length(self):
        with pytest.raises(GraphError):
            relabel(Graph([0, 0], [(0, 1)]), [1])

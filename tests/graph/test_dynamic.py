"""DynamicGraph suite: mutation must be invisible to every reader.

The contract under test (see ``repro/graph/dynamic.py``): after any
valid mutation stream, every accessor — adjacency, neighbor sets, the
lazily-cached label index, NLF and MND — equals a from-scratch
:class:`Graph` built from the current labels and edges, whether the
caches were materialized before the stream (incremental maintenance) or
after it (cold build).  The touch log records exactly what a plan-level
consumer must re-examine.
"""

import random

import pytest

from repro.graph.dynamic import (
    DELTA_OPS,
    Delta,
    DynamicGraph,
    parse_delta_stream,
)
from repro.graph.graph import Graph, GraphError
from repro.testing.workloads import (
    WorkloadSpec,
    generate_case,
    generate_delta_stream,
)


def assert_indexes_match_rebuild(dynamic: DynamicGraph) -> None:
    """Every derived structure equals a cold rebuild's."""
    rebuilt = Graph(list(dynamic.labels), dynamic.edges())
    assert dynamic.num_vertices == rebuilt.num_vertices
    assert dynamic.num_edges == rebuilt.num_edges
    assert {k: list(v) for k, v in dynamic.label_index().items()} == \
        {k: list(v) for k, v in rebuilt.label_index().items()}
    for v in rebuilt.vertices():
        assert list(dynamic.neighbors(v)) == list(rebuilt.neighbors(v))
        assert set(dynamic.neighbor_set(v)) == set(rebuilt.neighbor_set(v))
        assert dynamic.degree(v) == rebuilt.degree(v)
        assert dynamic.nlf(v) == rebuilt.nlf(v)
        assert dynamic.mnd(v) == rebuilt.mnd(v)


class TestDelta:
    def test_parse_format_round_trip(self):
        for line in ("ae 3 7", "re 0 1", "av 5", "rv 2"):
            assert Delta.parse(line).format() == line

    def test_ops_registry(self):
        assert set(DELTA_OPS) == {
            "add_edge", "remove_edge", "add_vertex", "remove_vertex"
        }

    @pytest.mark.parametrize("line", ["", "xx 1 2", "ae 1", "av 1 2", "ae a b"])
    def test_parse_rejects_malformed(self, line):
        with pytest.raises((GraphError, ValueError)):
            Delta.parse(line)

    def test_parse_delta_stream_skips_comments(self):
        text = "# header\n\nae 0 1\n  # indented comment\nrv 3\n"
        assert [d.format() for d in parse_delta_stream(text)] == \
            ["ae 0 1", "rv 3"]


class TestIndexMaintenance:
    @pytest.mark.parametrize("seed", range(6))
    def test_warm_caches_track_random_streams(self, seed):
        """Caches materialized *before* mutating are maintained in place
        and checked against a cold rebuild after every single delta."""
        case = generate_case(seed, seed, WorkloadSpec())
        dynamic = DynamicGraph.from_graph(case.data)
        # Materialize all lazy caches so the incremental paths run.
        dynamic.label_index()
        if dynamic.num_vertices:
            dynamic.nlf(0)
            dynamic.mnd(0)
        rng = random.Random(f"maintenance:{seed}")
        for delta in generate_delta_stream(case.data, rng, length=14):
            dynamic.apply(delta)
            assert_indexes_match_rebuild(dynamic)

    def test_cold_caches_after_stream(self):
        """Caches first touched after the stream see the final state."""
        case = generate_case(3, 1, WorkloadSpec())
        dynamic = DynamicGraph.from_graph(case.data)
        rng = random.Random("cold")
        for delta in generate_delta_stream(case.data, rng, length=10):
            dynamic.apply(delta)
        assert_indexes_match_rebuild(dynamic)

    def test_swap_remove_renumbers_last_vertex(self):
        dynamic = DynamicGraph([0, 1, 2], [(0, 1), (1, 2)])
        dynamic.label_index()
        dynamic.remove_vertex(0)        # vertex 2 takes over id 0
        assert list(dynamic.labels) == [2, 1]
        assert dynamic.has_edge(0, 1)
        assert_indexes_match_rebuild(dynamic)

    def test_to_static_is_independent(self):
        dynamic = DynamicGraph([0, 1], [(0, 1)])
        frozen = dynamic.to_static()
        dynamic.remove_edge(0, 1)
        assert frozen.has_edge(0, 1)
        assert not dynamic.has_edge(0, 1)

    def test_mutation_errors(self):
        dynamic = DynamicGraph([0, 1], [(0, 1)])
        with pytest.raises(GraphError):
            dynamic.add_edge(0, 0)      # self-loop
        with pytest.raises(GraphError):
            dynamic.add_edge(0, 1)      # duplicate
        with pytest.raises(GraphError):
            dynamic.remove_edge(1, 0) or dynamic.remove_edge(1, 0)
        with pytest.raises(GraphError):
            dynamic.remove_edge(0, 1)   # already gone
        with pytest.raises(GraphError):
            dynamic.add_edge(0, 9)      # unknown vertex
        # Failed mutations must not bump the version.
        assert dynamic.version == 1


class TestTouchLog:
    def test_version_is_monotonic(self):
        dynamic = DynamicGraph([0, 0], [])
        assert dynamic.version == 0
        dynamic.add_edge(0, 1)
        dynamic.add_vertex(3)
        dynamic.remove_edge(0, 1)
        assert dynamic.version == 3

    def test_touches_report_labels_and_renumbering(self):
        dynamic = DynamicGraph([0, 1, 2], [(0, 1), (1, 2)])
        dynamic.add_vertex(7)
        dynamic.remove_vertex(0)        # renumbers vertex 3 into slot 0
        touches = dynamic.touches_since(0)
        assert [t.version for t in touches] == [1, 2]
        assert touches[0].labels == frozenset({7})
        assert not touches[0].renumbered
        assert 0 in touches[1].labels   # the removed vertex's label
        assert touches[1].renumbered
        assert dynamic.touches_since(dynamic.version) == []

    def test_bounded_log_reports_gap(self):
        dynamic = DynamicGraph([0, 0, 0], [], log_limit=2)
        dynamic.add_edge(0, 1)
        dynamic.add_edge(1, 2)
        assert dynamic.touches_since(0) is not None
        dynamic.add_edge(0, 2)          # evicts the version-1 entry
        assert dynamic.touches_since(0) is None
        assert dynamic.touches_since(1) is not None

    def test_apply_matches_can_apply_on_random_streams(self):
        """``can_apply`` exactly predicts whether ``apply`` succeeds."""
        rng = random.Random("agreement")
        dynamic = DynamicGraph([rng.randrange(3) for _ in range(6)], [])
        for _ in range(300):
            op = rng.choice(list(DELTA_OPS))
            n = dynamic.num_vertices
            if op == "add_edge":
                delta = Delta.add_edge(rng.randrange(n + 1), rng.randrange(n + 1))
            elif op == "remove_edge":
                delta = Delta.remove_edge(rng.randrange(n + 1), rng.randrange(n + 1))
            elif op == "add_vertex":
                delta = Delta.add_vertex(rng.randrange(4))
            else:
                delta = Delta.remove_vertex(rng.randrange(n + 1))
            if dynamic.num_vertices == 0 and op != "add_vertex":
                continue
            if dynamic.can_apply(delta):
                dynamic.apply(delta)
            else:
                before = dynamic.version
                with pytest.raises(GraphError):
                    dynamic.apply(delta)
                assert dynamic.version == before

"""Each metamorphic relation: positive coverage on correct matchers
plus detection of an injected bug."""

import random

import pytest

from repro.core.matcher import CFLMatch
from repro.graph import Graph
from repro.testing.metamorphic import (
    METAMORPHIC_RELATIONS,
    disjoint_union,
    metamorphic_check,
    permute_vertices,
    relation_disjoint_union,
    relation_edge_monotonicity,
    relation_filter_ablation,
    relation_label_renaming,
    relation_stats_filter_ablation,
    relation_stats_vertex_permutation,
    relation_vertex_permutation,
    rename_labels,
)
from repro.testing.workloads import generate_case


def connected_cases(count):
    cases = []
    index = 0
    while len(cases) < count:
        case = generate_case(99, index)
        index += 1
        if case.query.is_connected():
            cases.append(case)
    return cases


class TestTransforms:
    def test_permute_vertices_preserves_structure(self):
        graph = Graph([5, 6, 7], [(0, 1), (1, 2)])
        permuted = permute_vertices(graph, [2, 0, 1])
        assert permuted.label(2) == 5 and permuted.label(0) == 6
        assert permuted.has_edge(2, 0) and permuted.has_edge(0, 1)

    def test_rename_labels(self):
        graph = Graph([1, 2], [(0, 1)])
        renamed = rename_labels(graph, {1: 9, 2: 8})
        assert renamed.labels == [9, 8]

    def test_disjoint_union_offsets(self):
        union = disjoint_union(Graph([0], []), Graph([1, 2], [(0, 1)]))
        assert union.labels == [0, 1, 2]
        assert list(union.edges()) == [(1, 2)]


class TestRelationsHoldOnCorrectMatchers:
    """One positive test per relation (the acceptance checklist)."""

    def test_vertex_permutation_invariance(self):
        rng = random.Random(1)
        for case in connected_cases(5):
            assert relation_vertex_permutation(
                case.data, case.query, "CFL-Match", rng
            ) is None

    def test_label_renaming_invariance(self):
        rng = random.Random(2)
        for case in connected_cases(5):
            assert relation_label_renaming(
                case.data, case.query, "QuickSI", rng
            ) is None

    def test_disjoint_union_multiplicativity(self):
        rng = random.Random(3)
        for case in connected_cases(5):
            assert relation_disjoint_union(
                case.data, case.query, "CFL-Match", rng
            ) is None

    def test_edge_addition_monotonicity(self):
        rng = random.Random(4)
        for case in connected_cases(5):
            assert relation_edge_monotonicity(
                case.data, case.query, "VF2", rng
            ) is None

    def test_filter_ablation_equivalence(self):
        rng = random.Random(5)
        for case in connected_cases(5):
            assert relation_filter_ablation(
                case.data, case.query, "CFL-Match", rng
            ) is None

    def test_stats_vertex_permutation_invariance(self):
        rng = random.Random(6)
        for case in connected_cases(5):
            assert relation_stats_vertex_permutation(
                case.data, case.query, "CFL-Match", rng
            ) is None

    def test_stats_filter_ablation_monotonicity(self):
        rng = random.Random(7)
        for case in connected_cases(5):
            assert relation_stats_filter_ablation(
                case.data, case.query, "CFL-Match", rng
            ) is None


class TestDetection:
    def test_monotonicity_catches_embedding_loss(self):
        """A matcher that drops embeddings on denser graphs violates
        edge-addition monotonicity."""
        from repro.bench.harness import MATCHERS

        class DropOnDense(CFLMatch):
            def search(self, query, **kwargs):
                dense = self.data.num_edges > 2
                for i, emb in enumerate(super().search(query, **kwargs)):
                    if dense and i == 0:
                        continue  # silently drop the first embedding
                    yield emb

        MATCHERS["DropOnDense"] = lambda g: DropOnDense(g)
        try:
            data = Graph([0, 1, 0], [(0, 1), (1, 2)])
            query = Graph([0, 1], [(0, 1)])
            detail = relation_edge_monotonicity(
                data, query, "DropOnDense", random.Random(0)
            )
        finally:
            del MATCHERS["DropOnDense"]
        assert detail is not None and "lost" in detail

    def test_permutation_catches_id_dependent_bug(self):
        from repro.bench.harness import MATCHERS

        class DropVertexZero(CFLMatch):
            def search(self, query, **kwargs):
                for emb in super().search(query, **kwargs):
                    if 0 not in emb:
                        yield emb

        MATCHERS["DropVertexZero"] = lambda g: DropVertexZero(g)
        try:
            data = Graph([0, 1, 0], [(0, 1), (1, 2)])
            query = Graph([0, 1], [(0, 1)])
            detected = any(
                relation_vertex_permutation(
                    data, query, "DropVertexZero", random.Random(seed)
                )
                is not None
                for seed in range(5)
            )
        finally:
            del MATCHERS["DropVertexZero"]
        assert detected

    def test_stats_permutation_catches_id_dependent_counters(self, monkeypatch):
        """A matcher whose counters depend on data vertex ids (here: the
        label sitting at id 0, which a permutation moves) is caught."""
        import repro.testing.metamorphic as metamorphic

        class IdSkewedCounters(CFLMatch):
            def run(self, query, **kwargs):
                report = super().run(query, **kwargs)
                report.stats.backtracks += self.data.label(0)
                return report

        monkeypatch.setattr(metamorphic, "CFLMatch", IdSkewedCounters)
        data = Graph([1, 2, 3], [(0, 1), (1, 2)])
        query = Graph([1, 2], [(0, 1)])
        detected = any(
            relation_stats_vertex_permutation(data, query, "CFL-Match", random.Random(seed))
            is not None
            for seed in range(8)
        )
        assert detected


class TestMetamorphicCheck:
    def test_all_relations_clean_on_current_code(self):
        for case in connected_cases(6):
            rng = random.Random(case.seed)
            assert metamorphic_check(case.data, case.query, "CFL-Match", rng) == []

    def test_disconnected_query_skipped(self):
        data = Graph([0, 1], [(0, 1)])
        query = Graph([0, 1], [])
        rng = random.Random(0)
        assert metamorphic_check(data, query, "CFL-Match", rng) == []

    def test_unknown_relation_raises(self):
        data = Graph([0], [])
        with pytest.raises(KeyError):
            metamorphic_check(
                data, data, "CFL-Match", random.Random(0), relations=["bogus"]
            )

    def test_registry_has_all_relations(self):
        assert sorted(METAMORPHIC_RELATIONS) == [
            "adaptive-replanning",
            "delta-commutativity",
            "disjoint-union",
            "edge-monotonicity",
            "filter-ablation",
            "insert-remove-inverse",
            "label-renaming",
            "stats-filter-ablation",
            "stats-optimizer-identity",
            "stats-vertex-permutation",
            "vertex-permutation",
        ]

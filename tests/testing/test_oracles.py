"""Tests for the shared oracle module."""

import random

from repro.graph import Graph
from repro.testing.oracles import (
    brute_force_cost_estimate,
    brute_force_count,
    brute_force_embeddings,
    is_brute_force_tractable,
)
from tests.conftest import nx_monomorphisms, random_instance


class TestBruteForce:
    def test_agrees_with_networkx(self, rng):
        for _ in range(15):
            data, query = random_instance(rng)
            assert brute_force_embeddings(query, data) == nx_monomorphisms(
                query, data
            )

    def test_count_matches_set_size(self, rng):
        data, query = random_instance(rng)
        assert brute_force_count(query, data) == len(
            brute_force_embeddings(query, data)
        )

    def test_disconnected_query_supported(self):
        data = Graph([0, 1, 0], [(0, 1), (1, 2)])
        query = Graph([0, 0], [])  # two isolated query vertices
        embeddings = brute_force_embeddings(query, data)
        assert embeddings == {(0, 2), (2, 0)}

    def test_conftest_reexport_is_same_object(self):
        from tests.conftest import brute_force_embeddings as reexported

        assert reexported is brute_force_embeddings


class TestTractability:
    def test_estimate_is_label_frequency_product(self):
        data = Graph([0, 0, 0, 1], [(0, 3), (1, 3), (2, 3)])
        query = Graph([0, 1], [(0, 1)])
        assert brute_force_cost_estimate(query, data) == 3.0

    def test_small_instances_tractable(self):
        rng = random.Random(0)
        data, query = random_instance(rng)
        assert is_brute_force_tractable(query, data)

    def test_budget_enforced(self):
        data = Graph([0] * 30, [(u, u + 1) for u in range(29)])
        query = Graph([0] * 8, [(u, u + 1) for u in range(7)])
        assert not is_brute_force_tractable(query, data, budget=1e6)

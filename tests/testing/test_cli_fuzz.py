"""Tests for the ``cfl-match fuzz`` subcommand."""

import json

from repro.cli import main


def test_fuzz_clean_run_exits_zero(capsys):
    code = main([
        "fuzz", "--seed", "3", "--budget-seconds", "20", "--max-cases", "20",
        "--matchers", "CFL-Match", "VF2", "QuickSI", "--no-corpus",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "no mismatches" in out


def test_fuzz_json_report_to_stdout(capsys):
    code = main([
        "fuzz", "--seed", "4", "--budget-seconds", "20", "--max-cases", "10",
        "--matchers", "CFL-Match", "Ullmann", "--no-corpus", "--json", "-",
        "--no-metamorphic",
    ])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    assert payload["ok"] is True
    assert payload["seed"] == 4
    assert payload["matchers"] == ["CFL-Match", "Ullmann"]


def test_fuzz_json_report_to_file(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    code = main([
        "fuzz", "--seed", "5", "--budget-seconds", "20", "--max-cases", "5",
        "--matchers", "CFL-Match", "--no-corpus", "--json", str(report_path),
        "--no-metamorphic",
    ])
    assert code == 0
    payload = json.loads(report_path.read_text())
    assert payload["cases_run"] + payload["cases_skipped"] == 5

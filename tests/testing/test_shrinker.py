"""Tests for the delta-debugging shrinker."""

import pytest

from repro.graph import Graph
from repro.testing.differential import differential_check
from repro.testing.oracles import brute_force_embeddings
from repro.testing.shrinker import shrink_case
from repro.testing.workloads import generate_case


class TestShrinkBasics:
    def test_requires_initially_failing_instance(self):
        data = Graph([0], [])
        with pytest.raises(ValueError):
            shrink_case(data, data, lambda d, q: False)

    def test_structural_predicate_minimized(self):
        """A failure that only needs one data edge shrinks to (almost)
        nothing else."""
        case = generate_case(7, 1)  # a dense case

        def failing(data, query):
            return data.num_edges >= 1 and query.num_vertices >= 1

        result = shrink_case(case.data, case.query, failing)
        assert result.data.num_vertices == 2
        assert result.data.num_edges == 1
        assert result.query.num_vertices == 1
        assert failing(result.data, result.query)

    def test_exceptions_in_predicate_count_as_pass(self):
        data = Graph([0, 0], [(0, 1)])
        query = Graph([0], [])

        def failing(d, q):
            if d.num_vertices < 2:
                raise RuntimeError("probe exploded")
            return True

        result = shrink_case(data, query, failing)
        assert result.data.num_vertices == 2  # smaller probes all "passed"

    def test_check_budget_respected(self):
        case = generate_case(0, 0)
        result = shrink_case(
            case.data, case.query, lambda d, q: True, max_checks=25
        )
        assert result.checks <= 25

    def test_connected_query_stays_connected(self):
        case = generate_case(11, 0)
        assert case.query.is_connected()
        result = shrink_case(case.data, case.query, lambda d, q: True)
        assert result.query.is_connected()
        assert result.query.num_vertices == 1


class TestShrinkRealMismatch:
    def test_broken_matcher_failure_minimized(self):
        """End-to-end: a differential failure shrinks to a tiny instance
        that still reproduces it."""
        from repro.bench.harness import MATCHERS
        from repro.core.matcher import CFLMatch

        class DropAll(CFLMatch):
            def search(self, query, **kwargs):
                return iter(())

        MATCHERS["DropAll"] = lambda g: DropAll(g)
        try:
            # Start from a case with embeddings.
            case = None
            for index in range(20):
                candidate = generate_case(5, index)
                if candidate.query.is_connected() and brute_force_embeddings(
                    candidate.query, candidate.data
                ):
                    case = candidate
                    break
            assert case is not None

            def failing(data, query):
                found = differential_check(
                    data, query, matchers=["CFL-Match", "DropAll"]
                )
                return any(m.matcher == "DropAll" for m in found)

            result = shrink_case(case.data, case.query, failing)
        finally:
            del MATCHERS["DropAll"]

        # Minimal witness of "returns nothing": a single matching vertex.
        assert result.query.num_vertices == 1
        assert result.data.num_vertices == 1
        assert result.data.label(0) == result.query.label(0)


class TestDeltaShrink:
    def _case(self):
        from repro.testing.dynamic import generate_delta_case

        return generate_delta_case(0, 0)

    def test_requires_initially_failing_instance(self):
        from repro.testing.shrinker import shrink_delta_case

        case = self._case()
        with pytest.raises(ValueError):
            shrink_delta_case(
                case.data, case.query, case.deltas, lambda d, q, s: False
            )

    def test_stream_minimized_to_single_witness(self):
        """A failure needing only one add_edge delta keeps exactly one."""
        from repro.testing.shrinker import shrink_delta_case, stream_applies

        case = self._case()
        assert stream_applies(case.data, case.deltas)

        def failing(data, query, stream):
            return any(d.op == "add_edge" for d in stream)

        result = shrink_delta_case(case.data, case.query, case.deltas, failing)
        assert len(result.deltas) == 1
        assert result.deltas[0].op == "add_edge"
        assert stream_applies(result.data, result.deltas)

    def test_graph_reductions_keep_stream_applicable(self):
        """Graph shrinking may not orphan a delta endpoint: every kept
        reduction still lets the surviving stream apply cleanly."""
        from repro.graph.dynamic import Delta
        from repro.testing.shrinker import shrink_delta_case, stream_applies

        case = self._case()
        stream = (Delta.add_vertex(9), Delta.remove_vertex(0))

        def failing(data, query, s):
            return len(s) == 2

        result = shrink_delta_case(case.data, case.query, stream, failing)
        assert result.deltas == stream
        assert stream_applies(result.data, result.deltas)

    def test_inapplicable_stream_counts_as_passing(self):
        from repro.graph.dynamic import Delta
        from repro.testing.shrinker import stream_applies

        data = Graph([0, 0], [(0, 1)])
        assert not stream_applies(data, [Delta.add_edge(0, 1)])   # duplicate
        assert not stream_applies(data, [Delta.remove_edge(0, 1),
                                         Delta.remove_edge(0, 1)])
        assert stream_applies(data, [Delta.remove_edge(0, 1),
                                     Delta.add_edge(0, 1)])

"""Tests for the delta-debugging shrinker."""

import pytest

from repro.graph import Graph
from repro.testing.differential import differential_check
from repro.testing.oracles import brute_force_embeddings
from repro.testing.shrinker import shrink_case
from repro.testing.workloads import generate_case


class TestShrinkBasics:
    def test_requires_initially_failing_instance(self):
        data = Graph([0], [])
        with pytest.raises(ValueError):
            shrink_case(data, data, lambda d, q: False)

    def test_structural_predicate_minimized(self):
        """A failure that only needs one data edge shrinks to (almost)
        nothing else."""
        case = generate_case(7, 1)  # a dense case

        def failing(data, query):
            return data.num_edges >= 1 and query.num_vertices >= 1

        result = shrink_case(case.data, case.query, failing)
        assert result.data.num_vertices == 2
        assert result.data.num_edges == 1
        assert result.query.num_vertices == 1
        assert failing(result.data, result.query)

    def test_exceptions_in_predicate_count_as_pass(self):
        data = Graph([0, 0], [(0, 1)])
        query = Graph([0], [])

        def failing(d, q):
            if d.num_vertices < 2:
                raise RuntimeError("probe exploded")
            return True

        result = shrink_case(data, query, failing)
        assert result.data.num_vertices == 2  # smaller probes all "passed"

    def test_check_budget_respected(self):
        case = generate_case(0, 0)
        result = shrink_case(
            case.data, case.query, lambda d, q: True, max_checks=25
        )
        assert result.checks <= 25

    def test_connected_query_stays_connected(self):
        case = generate_case(11, 0)
        assert case.query.is_connected()
        result = shrink_case(case.data, case.query, lambda d, q: True)
        assert result.query.is_connected()
        assert result.query.num_vertices == 1


class TestShrinkRealMismatch:
    def test_broken_matcher_failure_minimized(self):
        """End-to-end: a differential failure shrinks to a tiny instance
        that still reproduces it."""
        from repro.bench.harness import MATCHERS
        from repro.core.matcher import CFLMatch

        class DropAll(CFLMatch):
            def search(self, query, **kwargs):
                return iter(())

        MATCHERS["DropAll"] = lambda g: DropAll(g)
        try:
            # Start from a case with embeddings.
            case = None
            for index in range(20):
                candidate = generate_case(5, index)
                if candidate.query.is_connected() and brute_force_embeddings(
                    candidate.query, candidate.data
                ):
                    case = candidate
                    break
            assert case is not None

            def failing(data, query):
                found = differential_check(
                    data, query, matchers=["CFL-Match", "DropAll"]
                )
                return any(m.matcher == "DropAll" for m in found)

            result = shrink_case(case.data, case.query, failing)
        finally:
            del MATCHERS["DropAll"]

        # Minimal witness of "returns nothing": a single matching vertex.
        assert result.query.num_vertices == 1
        assert result.data.num_vertices == 1
        assert result.data.label(0) == result.query.label(0)

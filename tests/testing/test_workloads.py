"""Tests for the seeded fuzz workload generator."""

from repro.testing.oracles import brute_force_embeddings
from repro.testing.workloads import (
    DEFAULT_SCENARIOS,
    SCENARIOS,
    WorkloadSpec,
    generate_case,
    generate_cases,
)


class TestDeterminism:
    def test_same_seed_same_case(self):
        a = generate_case(42, 5)
        b = generate_case(42, 5)
        assert a.data == b.data
        assert a.query == b.query
        assert a.seed == b.seed

    def test_different_seeds_differ(self):
        cases_a = generate_cases(1, 10)
        cases_b = generate_cases(2, 10)
        assert any(
            x.data != y.data or x.query != y.query
            for x, y in zip(cases_a, cases_b)
        )

    def test_scenarios_rotate_by_index(self):
        names = [generate_case(0, i).scenario for i in range(len(DEFAULT_SCENARIOS))]
        assert names == list(DEFAULT_SCENARIOS)


class TestScenarioShapes:
    def test_every_scenario_produces_valid_graphs(self):
        for index, name in enumerate(DEFAULT_SCENARIOS):
            for round_ in range(3):
                case = generate_case(round_, index)
                assert case.scenario == name
                assert case.data.num_vertices >= 1
                assert case.query.num_vertices >= 1
                assert case.describe()  # renders without error

    def test_empty_result_scenario_has_zero_embeddings(self):
        index = DEFAULT_SCENARIOS.index("empty-result")
        for seed in range(4):
            case = generate_case(seed, index)
            assert brute_force_embeddings(case.query, case.data) == set()

    def test_disconnected_query_scenario_is_disconnected(self):
        index = DEFAULT_SCENARIOS.index("disconnected-query")
        for seed in range(4):
            case = generate_case(seed, index)
            assert not case.query.is_connected()

    def test_disconnected_data_scenario_is_disconnected(self):
        index = DEFAULT_SCENARIOS.index("disconnected-data")
        for seed in range(4):
            case = generate_case(seed, index)
            assert not case.data.is_connected()

    def test_nec_heavy_queries_have_leaf_fringe(self):
        index = DEFAULT_SCENARIOS.index("nec-heavy")
        for seed in range(4):
            case = generate_case(seed, index)
            leaves = [
                u for u in case.query.vertices() if case.query.degree(u) == 1
            ]
            assert len(leaves) >= 2

    def test_single_vertex_scenario(self):
        index = DEFAULT_SCENARIOS.index("single-vertex")
        case = generate_case(0, index)
        assert case.query.num_vertices == 1
        assert case.query.num_edges == 0


class TestSpecKnobs:
    def test_custom_scenario_subset(self):
        spec = WorkloadSpec(scenarios=("dense", "uniform"))
        names = [generate_case(0, i, spec).scenario for i in range(4)]
        assert names == ["dense", "uniform", "dense", "uniform"]

    def test_size_bounds_respected(self):
        spec = WorkloadSpec(
            data_vertices=(4, 6), query_vertices=(2, 3),
            scenarios=("uniform", "sparse-forest", "skewed-labels"),
        )
        for i in range(9):
            case = generate_case(0, i, spec)
            assert 4 <= case.data.num_vertices <= 6
            assert 1 <= case.query.num_vertices <= 6  # walk caps at component

    def test_unknown_scenario_raises(self):
        spec = WorkloadSpec(scenarios=("no-such-scenario",))
        try:
            generate_case(0, 0, spec)
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError for unknown scenario")

    def test_registry_and_default_agree(self):
        assert set(DEFAULT_SCENARIOS) == set(SCENARIOS)


class TestDynamicDeltaWorkloads:
    def test_delta_streams_are_deterministic_and_valid(self):
        import random

        from repro.testing.shrinker import stream_applies
        from repro.testing.workloads import generate_delta_stream

        case = generate_case(9, 2)
        a = generate_delta_stream(case.data, random.Random("s"), length=10)
        b = generate_delta_stream(case.data, random.Random("s"), length=10)
        assert [d.format() for d in a] == [d.format() for d in b]
        assert stream_applies(case.data, a)

    def test_dynamic_delta_scenario_registered(self):
        from repro.testing.workloads import DYNAMIC_BASE_SCENARIOS

        assert "dynamic-delta" in SCENARIOS
        assert "dynamic-delta" in DEFAULT_SCENARIOS
        assert "dynamic-delta" not in DYNAMIC_BASE_SCENARIOS
        assert set(DYNAMIC_BASE_SCENARIOS) < set(SCENARIOS)

    def test_dynamic_delta_case_is_mutated_dynamic_graph(self):
        """The scenario hands matchers the *incrementally maintained*
        graph object, not a rebuilt snapshot."""
        from repro.graph.dynamic import DynamicGraph
        from repro.graph.graph import Graph
        from repro.testing.workloads import WorkloadSpec

        spec = WorkloadSpec(scenarios=("dynamic-delta",))
        for index in range(4):
            case = generate_case(21, index, spec)
            assert isinstance(case.data, DynamicGraph)
            assert case.data == Graph(list(case.data.labels),
                                      case.data.edges())

    def test_dynamic_delta_workload_matches_scenario(self):
        import random

        from repro.graph.dynamic import DynamicGraph
        from repro.testing.workloads import WorkloadSpec, dynamic_delta_workload

        base, query, deltas = dynamic_delta_workload(
            random.Random("w"), WorkloadSpec()
        )
        replay = DynamicGraph.from_graph(base)
        for delta in deltas:
            replay.apply(delta)
        assert replay.num_vertices >= 1

"""Replay every minimized reproducer in ``tests/corpus/``.

Corpus entries are written by the fuzz engine when it finds a mismatch
(see docs/testing.md).  Once the underlying bug is fixed the entry stays
here forever as a regression test: replay re-runs every registered
matcher on the stored instance against the brute-force oracle.
"""

from pathlib import Path

import pytest

from repro.testing.corpus import (
    graph_from_dict,
    graph_to_dict,
    load_corpus,
    replay_entry,
    save_reproducer,
)
from repro.graph import Graph

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"

_ENTRIES = load_corpus(CORPUS_DIR)


@pytest.mark.parametrize(
    "path,entry",
    _ENTRIES,
    ids=[path.name for path, _ in _ENTRIES],
)
def test_corpus_entry_replays_clean(path, entry):
    mismatches = replay_entry(entry)
    assert mismatches == [], (
        f"{path.name} (captured from {entry.get('seed')!r}, "
        f"kind={entry.get('kind')!r}) still mismatches: "
        + "; ".join(m.describe() for m in mismatches)
    )


def test_corpus_is_not_empty():
    """The corpus ships with at least one seed entry so the replay
    convention is always exercised."""
    assert _ENTRIES, f"no corpus entries under {CORPUS_DIR}"


class TestCorpusIO:
    def test_graph_round_trip(self):
        graph = Graph([0, 1, 2], [(0, 1), (1, 2)])
        assert graph_from_dict(graph_to_dict(graph)) == graph

    def test_save_is_idempotent(self, tmp_path):
        data = Graph([0, 0], [(0, 1)])
        query = Graph([0], [])
        first = save_reproducer(
            tmp_path, data, query, kind="differential", matcher="X", detail="d",
        )
        second = save_reproducer(
            tmp_path, data, query, kind="differential", matcher="X",
            detail="different detail, same instance",
        )
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_load_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_saved_entry_replays(self, tmp_path):
        data = Graph([0, 1, 0], [(0, 1), (1, 2)])
        query = Graph([0, 1], [(0, 1)])
        path = save_reproducer(
            tmp_path, data, query, kind="seed-example", matcher="CFL-Match",
            detail="synthetic",
        )
        entries = load_corpus(tmp_path)
        assert [p for p, _ in entries] == [path]
        assert replay_entry(entries[0][1]) == []

"""Injected-bug self-test: the fuzz engine must detect a deliberately
broken matcher and emit a minimized reproducer into ``tests/corpus/``.

This is the end-to-end guarantee future perf PRs lean on: if the engine
ever stops catching this bug class, this test fails before any real bug
slips through.
"""

import json
from pathlib import Path

import pytest

from repro.bench.harness import MATCHERS
from repro.core.matcher import CFLMatch
from repro.testing.corpus import graph_from_dict
from repro.testing.engine import run_fuzz
from repro.testing.oracles import brute_force_embeddings

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"


class TruncatingMatch(CFLMatch):
    """Deliberately broken: stops one embedding early (the classic
    off-by-one an enumeration optimization can introduce)."""

    name = "Truncating"

    def search(self, query, **kwargs):
        previous = None
        for embedding in super().search(query, **kwargs):
            if previous is not None:
                yield previous
            previous = embedding
        # the final embedding is silently dropped


@pytest.fixture
def truncating_registry():
    MATCHERS["Truncating"] = lambda g: TruncatingMatch(g)
    try:
        yield
    finally:
        del MATCHERS["Truncating"]


def test_engine_detects_injected_bug_and_writes_corpus(truncating_registry):
    before = set(CORPUS_DIR.glob("*.json")) if CORPUS_DIR.is_dir() else set()
    created = []
    try:
        report = run_fuzz(
            seed=20160626,
            budget_seconds=30.0,
            matchers=["CFL-Match", "Truncating"],
            corpus_dir=CORPUS_DIR,
            max_failures=1,
        )
        created = [p for p in CORPUS_DIR.glob("*.json") if p not in before]

        assert not report.ok
        record = report.mismatches[0]
        assert record.matcher == "Truncating"
        assert record.kind == "differential"
        assert record.reproducer is not None

        # The reproducer landed in tests/corpus/ and is minimal: one
        # embedding suffices to witness "drops the last embedding".
        assert created, "no reproducer written to tests/corpus/"
        payload = json.loads(Path(record.reproducer).read_text())
        data = graph_from_dict(payload["data"])
        query = graph_from_dict(payload["query"])
        assert query.num_vertices == 1
        assert data.num_vertices == 1
        assert len(brute_force_embeddings(query, data)) == 1
        assert record.minimized_query == {"vertices": 1, "edges": 0}
    finally:
        # The injected bug is synthetic — do not leave its reproducer in
        # the permanent corpus.
        for path in created:
            path.unlink()


def test_engine_clean_run_writes_nothing(tmp_path):
    report = run_fuzz(
        seed=1,
        budget_seconds=20.0,
        matchers=["CFL-Match", "VF2", "QuickSI"],
        max_cases=25,
        corpus_dir=tmp_path,
    )
    assert report.ok
    assert report.cases_run > 0
    assert list(tmp_path.glob("*.json")) == []


def test_report_json_round_trip(tmp_path):
    report = run_fuzz(
        seed=2, budget_seconds=10.0, matchers=["CFL-Match"],
        max_cases=5, metamorphic=False,
    )
    payload = json.loads(report.to_json())
    assert payload["ok"] is True
    assert payload["cases_run"] == report.cases_run
    assert payload["seed"] == 2


def test_unknown_matcher_rejected():
    with pytest.raises(KeyError):
        run_fuzz(seed=0, budget_seconds=1.0, matchers=["Nope"])


def test_max_cases_bounds_work():
    report = run_fuzz(
        seed=3, budget_seconds=60.0, matchers=["CFL-Match", "VF2"],
        max_cases=7, metamorphic=False,
    )
    assert report.cases_run + report.cases_skipped == 7

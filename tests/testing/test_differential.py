"""Tests for the differential runner (including a broken-matcher canary)."""

import pytest

from repro.bench.harness import MATCHERS
from repro.core.matcher import CFLMatch
from repro.graph import Graph
from repro.testing.differential import (
    Mismatch,
    differential_check,
    run_matcher,
)
from repro.testing.workloads import generate_case


class DropVertexZeroMatch(CFLMatch):
    """Deliberately broken: silently drops every embedding using data
    vertex 0 (the class of bug enumeration-order optimizations cause)."""

    name = "DropVertexZero"

    def search(self, query, **kwargs):
        for embedding in super().search(query, **kwargs):
            if 0 not in embedding:
                yield embedding


@pytest.fixture
def broken_registry():
    MATCHERS["DropVertexZero"] = lambda g: DropVertexZeroMatch(g)
    try:
        yield
    finally:
        del MATCHERS["DropVertexZero"]


class TestRunMatcher:
    def test_ok_outcome(self):
        data = Graph([0, 1], [(0, 1)])
        query = Graph([0, 1], [(0, 1)])
        outcome = run_matcher("CFL-Match", data, query)
        assert outcome.status == "ok"
        assert outcome.embeddings == [(0, 1)]

    def test_disconnected_query_rejection_is_not_an_error(self):
        data = Graph([0, 1], [(0, 1)])
        query = Graph([0, 1], [])
        outcome = run_matcher("CFL-Match", data, query)
        assert outcome.status == "rejected"

    def test_all_registered_matchers_handle_disconnected_queries(self):
        """Every matcher either rejects cleanly or answers; no crashes,
        no partial mappings (the TurboISO/Boost regression)."""
        data = Graph([0, 1, 0, 1], [(0, 1), (1, 2), (2, 3)])
        query = Graph([0, 1], [])
        for name in sorted(MATCHERS):
            outcome = run_matcher(name, data, query)
            assert outcome.status in ("ok", "rejected"), (name, outcome.error)
            if outcome.status == "ok":
                assert all(-1 not in e for e in outcome.embeddings), name


class TestDifferentialCheck:
    def test_zero_mismatches_on_current_code(self):
        for index in range(30):
            case = generate_case(20160626, index)
            mismatches = differential_check(case.data, case.query)
            assert mismatches == [], (case.describe(), mismatches)

    def test_unknown_matcher_raises(self):
        data = Graph([0], [])
        with pytest.raises(KeyError):
            differential_check(data, data, matchers=["NoSuchMatcher"])

    def test_broken_matcher_detected(self, broken_registry):
        data = Graph([0, 0, 1], [(0, 1), (0, 2), (1, 2)])
        query = Graph([0, 1], [(0, 1)])
        mismatches = differential_check(
            data, query, matchers=["CFL-Match", "DropVertexZero"]
        )
        assert len(mismatches) == 1
        mismatch = mismatches[0]
        assert mismatch.matcher == "DropVertexZero"
        assert mismatch.kind == "differential"
        assert "missing" in mismatch.detail

    def test_crashing_matcher_reported_as_crash(self):
        class ExplodingMatch(CFLMatch):
            def search(self, query, **kwargs):
                raise RuntimeError("boom")

        MATCHERS["Exploding"] = lambda g: ExplodingMatch(g)
        try:
            data = Graph([0, 1], [(0, 1)])
            query = Graph([0, 1], [(0, 1)])
            mismatches = differential_check(
                data, query, matchers=["CFL-Match", "Exploding"]
            )
        finally:
            del MATCHERS["Exploding"]
        assert [m.kind for m in mismatches] == ["crash"]
        assert "boom" in mismatches[0].detail

    def test_limit_skips_set_comparison(self):
        data = Graph([0, 0, 0], [(0, 1), (1, 2), (0, 2)])
        query = Graph([0, 0], [(0, 1)])
        assert differential_check(data, query, limit=2) == []

    def test_mismatch_describe(self):
        mismatch = Mismatch("X", "differential", "detail here")
        assert "X" in mismatch.describe()
        assert "differential" in mismatch.describe()

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random
from typing import Set, Tuple

import pytest
from hypothesis import settings

from repro.graph import Graph, random_connected_graph
# The single reference oracle, shared with the fuzz engine (re-exported
# here because many tests import it from tests.conftest).
from repro.testing.oracles import brute_force_embeddings  # noqa: F401

# Hypothesis profiles: "dev" keeps tier-1 wall time bounded; "ci" digs
# deeper.  Select with HYPOTHESIS_PROFILE=ci (the CI workflow does).
settings.register_profile("dev", max_examples=30, deadline=None)
settings.register_profile("ci", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def nx_monomorphisms(query: Graph, data: Graph) -> Set[Tuple[int, ...]]:
    """Ground-truth embeddings via networkx (independent oracle).

    Returns tuples ``m`` with ``m[u]`` = data vertex of query vertex u.
    """
    import networkx as nx

    gq = nx.Graph()
    for u in query.vertices():
        gq.add_node(u, label=query.label(u))
    gq.add_edges_from(query.edges())
    gd = nx.Graph()
    for v in data.vertices():
        gd.add_node(v, label=data.label(v))
    gd.add_edges_from(data.edges())
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        gd, gq, node_match=lambda a, b: a["label"] == b["label"]
    )
    result: Set[Tuple[int, ...]] = set()
    for mapping in matcher.subgraph_monomorphisms_iter():
        inverse = {qv: dv for dv, qv in mapping.items()}
        result.add(tuple(inverse[u] for u in query.vertices()))
    return result


def random_instance(
    rng: random.Random,
    data_vertices: Tuple[int, int] = (8, 26),
    query_vertices: Tuple[int, int] = (2, 7),
    num_labels: Tuple[int, int] = (2, 5),
) -> Tuple[Graph, Graph]:
    """A (data, query) pair of random connected labeled graphs."""
    data = random_connected_graph(
        rng.randrange(*data_vertices), rng.randrange(0, 20),
        rng.randrange(*num_labels), rng,
    )
    query = random_connected_graph(
        rng.randrange(*query_vertices), rng.randrange(0, 4),
        rng.randrange(2, 4), rng,
    )
    return data, query


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20160626)  # SIGMOD'16 started June 26, 2016


@pytest.fixture
def triangle_query() -> Graph:
    """A labeled triangle: the smallest query with a non-trivial core."""
    return Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path_query() -> Graph:
    """A labeled 3-path (a tree query: empty 2-core)."""
    return Graph([0, 1, 0], [(0, 1), (1, 2)])


@pytest.fixture
def small_data() -> Graph:
    """Ten-vertex data graph with repeated labels and a few triangles."""
    return Graph(
        [0, 1, 2, 0, 1, 2, 0, 1, 2, 0],
        [
            (0, 1), (1, 2), (0, 2),
            (2, 3), (3, 4), (4, 5), (3, 5),
            (5, 6), (6, 7), (7, 8), (6, 8), (8, 9), (9, 0),
        ],
    )

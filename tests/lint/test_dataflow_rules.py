"""Fixture tests for the dataflow rules R007-R009: a firing snippet and
a near-miss per behavior, including the seeded KeyboardInterrupt leak
(`except Exception: seg.unlink(); raise`) that a purely intraprocedural
engine cannot distinguish from the safe `except BaseException` form."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source

SHM = "src/repro/core/shm.py"
KERNEL = "src/repro/core/kernel.py"
DYNAMIC = "src/repro/graph/dynamic.py"


def run(source: str, relpath: str, select):
    return lint_source(textwrap.dedent(source), relpath, select=select)


# ----------------------------------------------------------------------
# R007 segment-lifecycle
# ----------------------------------------------------------------------
class TestR007:
    def test_fires_on_interrupt_path_past_except_exception(self):
        # The seeded acceptance bug: unlink() happens in the handler,
        # but a KeyboardInterrupt takes the residual edge past
        # `except Exception` with the segment still created.
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def publish(payload):
                seg = SharedMemory("queue", True, 64)
                try:
                    encode(payload)
                except Exception:
                    seg.unlink()
                    raise
                seg.unlink()
            """,
            SHM,
            ["R007"],
        )
        assert [d.rule for d in diags] == ["R007"]
        assert "exceptional exit path" in diags[0].message

    def test_except_base_exception_is_clean(self):
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def publish(payload):
                seg = SharedMemory("queue", True, 64)
                try:
                    encode(payload)
                except BaseException:
                    seg.unlink()
                    raise
                seg.unlink()
            """,
            SHM,
            ["R007"],
        )
        assert diags == []

    def test_close_without_unlink_fires(self):
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def publish(data):
                seg = SharedMemory("queue", True, 64)
                seg.close()
            """,
            SHM,
            ["R007"],
        )
        assert [d.rule for d in diags] == ["R007"]
        assert "closed but never unlinked" in diags[0].message

    def test_unlink_in_finally_is_clean(self):
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def publish(data):
                seg = SharedMemory("queue", True, 64)
                try:
                    fill(seg.buf, data)
                finally:
                    seg.unlink()
            """,
            SHM,
            ["R007"],
        )
        assert diags == []

    def test_escape_discharges_the_obligation(self):
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def make():
                seg = SharedMemory("queue", True, 64)
                return seg
            """,
            SHM,
            ["R007"],
        )
        assert diags == []

    def test_closure_captured_resources_are_skipped(self):
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def make():
                seg = SharedMemory("queue", True, 64)

                def release():
                    seg.unlink()

                return release
            """,
            SHM,
            ["R007"],
        )
        assert diags == []

    def test_attached_segment_unlink_fires(self):
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def reader(name):
                seg = SharedMemory(name)
                seg.unlink()
            """,
            SHM,
            ["R007"],
        )
        assert [d.rule for d in diags] == ["R007"]
        assert "never be unlinked" in diags[0].message

    def test_attached_segment_close_is_clean(self):
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def reader(name):
                seg = SharedMemory(name)
                try:
                    decode(seg.buf)
                finally:
                    seg.close()
            """,
            SHM,
            ["R007"],
        )
        assert diags == []

    def test_attached_never_closed_fires(self):
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def reader(name):
                seg = SharedMemory(name)
                decode(seg.buf)
            """,
            SHM,
            ["R007"],
        )
        assert [d.rule for d in diags] == ["R007"]
        assert "never closed on a normal exit path" in diags[0].message

    def test_unlink_through_helper_summary_fires_for_attacher(self):
        # interprocedural: _discard's may_unlink_params=(0,) summary
        # propagates the forbidden unlink to the attaching caller
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def _discard(seg):
                seg.unlink()


            def reader(name):
                seg = SharedMemory(name)
                _discard(seg)
                seg.close()
            """,
            SHM,
            ["R007"],
        )
        assert [d.rule for d in diags] == ["R007"]
        assert "never be unlinked" in diags[0].message

    def test_leak_through_creating_helper_fires(self):
        # interprocedural: _open's resource_returns="created" summary
        # makes the caller's binding a tracked creation site
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def _open(size):
                seg = SharedMemory("scratch", True, size)
                return seg


            def broken(size):
                seg = _open(size)
                seg.close()
            """,
            SHM,
            ["R007"],
        )
        assert [d.rule for d in diags] == ["R007"]
        assert "closed but never unlinked" in diags[0].message

    def test_unlink_through_creating_helper_is_clean(self):
        diags = run(
            """
            from multiprocessing.shared_memory import SharedMemory


            def _open(size):
                seg = SharedMemory("scratch", True, size)
                return seg


            def fine(size):
                seg = _open(size)
                seg.unlink()
            """,
            SHM,
            ["R007"],
        )
        assert diags == []


# ----------------------------------------------------------------------
# R008 dtype-escape
# ----------------------------------------------------------------------
class TestR008:
    def test_fires_on_numpy_value_into_stats(self):
        diags = run(
            """
            import numpy as np


            def fill(stats, arr):
                stats.nodes = np.sum(arr)
            """,
            KERNEL,
            ["R008"],
        )
        assert [d.rule for d in diags] == ["R008"]
        assert "'nodes'" in diags[0].message

    def test_int_sanitizer_is_clean(self):
        diags = run(
            """
            import numpy as np


            def fill(stats, arr):
                stats.nodes = int(np.sum(arr))
            """,
            KERNEL,
            ["R008"],
        )
        assert diags == []

    def test_fires_on_numpy_value_into_plan(self):
        diags = run(
            """
            import numpy as np


            def pack(plan, arr):
                plan.order = np.argsort(arr)
            """,
            KERNEL,
            ["R008"],
        )
        assert [d.rule for d in diags] == ["R008"]
        assert "plan structure" in diags[0].message

    def test_tolist_sanitizer_is_clean(self):
        diags = run(
            """
            import numpy as np


            def pack(plan, arr):
                plan.order = np.argsort(arr).tolist()
            """,
            KERNEL,
            ["R008"],
        )
        assert diags == []

    def test_fires_on_tainted_yield(self):
        diags = run(
            """
            import numpy as np


            def stream(arr):
                for value in np.nditer(arr):
                    yield value
            """,
            KERNEL,
            ["R008"],
        )
        assert [d.rule for d in diags] == ["R008"]
        assert "yielded" in diags[0].message

    def test_sanitized_yield_is_clean(self):
        diags = run(
            """
            import numpy as np


            def stream(arr):
                for value in np.nditer(arr):
                    yield int(value)
            """,
            KERNEL,
            ["R008"],
        )
        assert diags == []

    def test_may_taint_joins_to_unknown_and_stays_silent(self):
        # only *definite* taints fire: py-or-numpy joins to TOP
        diags = run(
            """
            import numpy as np


            def fill(stats, arr, flag):
                total = 0
                if flag:
                    total = np.sum(arr)
                stats.nodes = total
            """,
            KERNEL,
            ["R008"],
        )
        assert diags == []

    def test_taint_composes_through_helper_summary(self):
        diags = run(
            """
            import numpy as np


            def _score(arr):
                return np.sum(arr)


            def fill(stats, arr):
                stats.nodes = _score(arr)
            """,
            KERNEL,
            ["R008"],
        )
        assert [d.rule for d in diags] == ["R008"]


# ----------------------------------------------------------------------
# R009 mutation-version discipline
# ----------------------------------------------------------------------
class TestR009:
    def test_fires_on_uncommitted_public_mutator(self):
        diags = run(
            """
            class DynamicGraph:
                def add_edge(self, u, v):
                    self.adj[u].append(v)
            """,
            DYNAMIC,
            ["R009"],
        )
        assert [d.rule for d in diags] == ["R009"]
        assert "add_edge" in diags[0].message

    def test_commit_at_the_end_is_clean(self):
        diags = run(
            """
            class DynamicGraph:
                def _commit(self):
                    self._version += 1
                    self._log.append(("touch",))

                def add_edge(self, u, v):
                    self.adj[u].append(v)
                    self._commit()
            """,
            DYNAMIC,
            ["R009"],
        )
        assert diags == []

    def test_fires_when_commit_is_only_conditional(self):
        diags = run(
            """
            class DynamicGraph:
                def _commit(self):
                    self._version += 1
                    self._log.append(("touch",))

                def add_edge(self, u, v, flag):
                    self.adj[u].append(v)
                    if flag:
                        self._commit()
            """,
            DYNAMIC,
            ["R009"],
        )
        assert [d.rule for d in diags] == ["R009"]

    def test_private_helpers_may_stay_dirty(self):
        diags = run(
            """
            class DynamicGraph:
                def _wipe(self, u):
                    self.adj[u].clear()
            """,
            DYNAMIC,
            ["R009"],
        )
        assert diags == []

    def test_dirty_bit_propagates_through_helper_summary(self):
        diags = run(
            """
            class DynamicGraph:
                def _wipe(self, u):
                    self.adj[u].clear()

                def clear_vertex(self, u):
                    self._wipe(u)
            """,
            DYNAMIC,
            ["R009"],
        )
        assert [d.rule for d in diags] == ["R009"]
        assert "clear_vertex" in diags[0].message

    def test_helper_then_commit_is_clean(self):
        diags = run(
            """
            class DynamicGraph:
                def _commit(self):
                    self._version += 1
                    self._log.append(("touch",))

                def _wipe(self, u):
                    self.adj[u].clear()

                def clear_vertex(self, u):
                    self._wipe(u)
                    self._commit()
            """,
            DYNAMIC,
            ["R009"],
        )
        assert diags == []

    def test_commit_that_logs_before_bumping_fires(self):
        diags = run(
            """
            class DynamicGraph:
                def _commit(self):
                    self._log.append(("touch",))
                    self._version += 1
            """,
            DYNAMIC,
            ["R009"],
        )
        assert [d.rule for d in diags] == ["R009"]
        assert "before bumping" in diags[0].message

    def test_commit_that_never_bumps_fires(self):
        diags = run(
            """
            class DynamicGraph:
                def _commit(self):
                    self._log.append(("touch",))
            """,
            DYNAMIC,
            ["R009"],
        )
        assert [d.rule for d in diags] == ["R009"]
        assert "never bumps" in diags[0].message

"""R001's cross-artifact check: SearchStats fields vs profile-schema
counters, failing in BOTH directions, plus the live-repo consistency
gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import ProjectFacts, get_rule
from repro.lint.facts import (
    FactError,
    parse_schema_counters,
    parse_stats_fields,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

STATS_SOURCE = """
from dataclasses import dataclass


@dataclass
class SearchStats:
    nodes: int = 0
    embeddings: int = 0
    backtracks: int = 0

    def merge(self, other):
        return self
"""


def make_schema(counters):
    return json.dumps(
        {
            "type": "object",
            "properties": {
                "counters": {
                    "type": "object",
                    "required": list(counters),
                }
            },
        }
    )


def facts_from(tmp_path: Path, stats_source: str, schema_text: str) -> ProjectFacts:
    stats_path = tmp_path / "stats.py"
    schema_path = tmp_path / "schema.json"
    stats_path.write_text(stats_source)
    schema_path.write_text(schema_text)
    return ProjectFacts.from_paths(stats_path, schema_path)


class TestParsing:
    def test_parse_stats_fields(self):
        fields = parse_stats_fields(STATS_SOURCE)
        assert fields == frozenset({"nodes", "embeddings", "backtracks"})

    def test_parse_stats_fields_missing_class(self):
        with pytest.raises(FactError):
            parse_stats_fields("x = 1\n")

    def test_parse_schema_counters(self):
        counters = parse_schema_counters(make_schema(["nodes", "embeddings"]))
        assert counters == frozenset({"nodes", "embeddings"})

    def test_parse_schema_counters_malformed(self):
        with pytest.raises(FactError):
            parse_schema_counters("{}")
        with pytest.raises(FactError):
            parse_schema_counters(json.dumps({"properties": {"counters": {}}}))


class TestCrossCheck:
    def test_consistent_registries_pass(self, tmp_path):
        facts = facts_from(
            tmp_path, STATS_SOURCE, make_schema(["nodes", "embeddings", "backtracks"])
        )
        assert get_rule("R001").project_check(facts) == []

    def test_field_missing_from_schema_fails(self, tmp_path):
        # direction 1: a declared SearchStats field the schema forgot
        facts = facts_from(
            tmp_path, STATS_SOURCE, make_schema(["nodes", "embeddings"])
        )
        diags = get_rule("R001").project_check(facts)
        assert len(diags) == 1
        assert "backtracks" in diags[0].message
        assert diags[0].path.endswith("schema.json")

    def test_schema_counter_without_field_fails(self, tmp_path):
        # direction 2: a schema counter no dataclass field backs
        facts = facts_from(
            tmp_path,
            STATS_SOURCE,
            make_schema(["nodes", "embeddings", "backtracks", "phantom"]),
        )
        diags = get_rule("R001").project_check(facts)
        assert len(diags) == 1
        assert "phantom" in diags[0].message
        assert diags[0].path.endswith("stats.py")

    def test_both_directions_at_once(self, tmp_path):
        facts = facts_from(
            tmp_path, STATS_SOURCE, make_schema(["nodes", "embeddings", "phantom"])
        )
        diags = get_rule("R001").project_check(facts)
        assert sorted(d.rule for d in diags) == ["R001", "R001"]
        messages = " ".join(d.message for d in diags)
        assert "backtracks" in messages and "phantom" in messages


class TestLiveRepo:
    def test_repo_registries_are_in_lockstep(self):
        facts = ProjectFacts.load(REPO_ROOT)
        assert facts is not None
        assert facts.stats_fields == facts.schema_counters
        assert get_rule("R001").project_check(facts) == []

    def test_load_returns_none_outside_a_repo(self, tmp_path):
        assert ProjectFacts.load(tmp_path) is None

"""Fixture tests for every repro-lint rule: one firing snippet and one
near-miss per rule, so a rule that silently stops firing (or starts
over-firing) fails here before it rots in CI."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import ProjectFacts, lint_source

FACTS = ProjectFacts(
    stats_fields=frozenset({"nodes", "embeddings", "backtracks"}),
    schema_counters=frozenset({"nodes", "embeddings", "backtracks"}),
    stats_path="src/repro/core/stats.py",
    schema_path="docs/profile.schema.json",
)


def run(source: str, relpath: str, select=None, facts=FACTS):
    return lint_source(textwrap.dedent(source), relpath, facts=facts, select=select)


# ----------------------------------------------------------------------
# R001 counter-discipline
# ----------------------------------------------------------------------
class TestR001:
    def test_fires_on_undeclared_counter(self):
        diags = run(
            """
            def f(stats: "SearchStats") -> None:
                stats.nodez += 1
            """,
            "src/repro/core/foo.py",
            select=["R001"],
        )
        assert [d.rule for d in diags] == ["R001"]
        assert "nodez" in diags[0].message

    def test_fires_on_literal_setattr(self):
        diags = run(
            """
            from .stats import SearchStats

            def f():
                stats = SearchStats()
                setattr(stats, "bogus", 1)
            """,
            "src/repro/core/foo.py",
            select=["R001"],
        )
        assert len(diags) == 1

    def test_fires_inside_closure_via_inherited_env(self):
        diags = run(
            """
            def outer(stats: "SearchStats") -> None:
                def inner() -> None:
                    stats.typo_counter += 1
                inner()
            """,
            "src/repro/core/foo.py",
            select=["R001"],
        )
        assert len(diags) == 1

    def test_near_miss_declared_counter_passes(self):
        diags = run(
            """
            def f(stats: "SearchStats") -> None:
                stats.nodes += 1
                stats.backtracks += 1
            """,
            "src/repro/core/foo.py",
            select=["R001"],
        )
        assert diags == []

    def test_near_miss_dynamic_setattr_passes(self):
        # merge() iterates dataclasses.fields — dynamic names are exempt
        diags = run(
            """
            import dataclasses

            def merge(stats: "SearchStats", other: "SearchStats") -> None:
                for f in dataclasses.fields(stats):
                    setattr(stats, f.name, getattr(other, f.name))
            """,
            "src/repro/core/foo.py",
            select=["R001"],
        )
        assert diags == []

    def test_near_miss_non_stats_object_passes(self):
        diags = run(
            """
            def f(config) -> None:
                config.nodez += 1
            """,
            "src/repro/core/foo.py",
            select=["R001"],
        )
        assert diags == []

    def test_no_facts_means_no_findings(self):
        diags = run(
            """
            def f(stats: "SearchStats") -> None:
                stats.nodez += 1
            """,
            "src/repro/core/foo.py",
            select=["R001"],
            facts=None,
        )
        assert diags == []


# ----------------------------------------------------------------------
# R002 spawn-safety
# ----------------------------------------------------------------------
class TestR002:
    PATH = "src/repro/core/parallel.py"

    def test_fires_on_lambda_task(self):
        diags = run(
            "def go(pool, items):\n"
            "    pool.apply_async(lambda x: x + 1, (items,))\n",
            self.PATH,
            select=["R002"],
        )
        assert [d.rule for d in diags] == ["R002"]
        assert "lambda" in diags[0].message

    def test_fires_on_nested_function(self):
        diags = run(
            """
            def go(pool, items):
                def worker(x):
                    return x
                return pool.map(worker, items)
            """,
            self.PATH,
            select=["R002"],
        )
        assert len(diags) == 1
        assert "closure" in diags[0].message

    def test_fires_on_bound_method_initializer(self):
        diags = run(
            """
            def go(ctx, helper):
                return ctx.Pool(2, initializer=helper.setup)
            """,
            self.PATH,
            select=["R002"],
        )
        assert len(diags) == 1
        assert "bound method" in diags[0].message

    def test_near_miss_module_level_function_passes(self):
        diags = run(
            """
            def task(x):
                return x

            def go(pool, items):
                return pool.map(task, items)
            """,
            self.PATH,
            select=["R002"],
        )
        assert diags == []

    def test_near_miss_parent_side_callback_lambda_passes(self):
        diags = run(
            """
            def task(x):
                return x

            def go(pool, out):
                pool.apply_async(task, (1,), callback=lambda r: out.append(r))
            """,
            self.PATH,
            select=["R002"],
        )
        assert diags == []

    def test_scoped_to_parallel_module_only(self):
        diags = run(
            "def go(pool):\n    pool.map(lambda x: x, [1])\n",
            "src/repro/core/ordering.py",
            select=["R002"],
        )
        assert diags == []

    def test_fires_in_shm_module(self):
        # the shared-memory layer is in scope: its attach helpers cross
        # the pool boundary under spawn and must pickle by module path
        diags = run(
            """
            def start(ctx, handle):
                def attach():
                    return handle
                return ctx.Pool(2, initializer=attach)
            """,
            "src/repro/core/shm.py",
            select=["R002"],
        )
        assert len(diags) == 1
        assert "closure" in diags[0].message

    def test_near_miss_module_level_attach_in_shm_passes(self):
        diags = run(
            """
            def attach_graph_store(handle):
                return handle

            def start(ctx, handle):
                return ctx.Pool(2, initializer=attach_graph_store)
            """,
            "src/repro/core/shm.py",
            select=["R002"],
        )
        assert diags == []


# ----------------------------------------------------------------------
# R003 frozen-plan
# ----------------------------------------------------------------------
class TestR003:
    def test_fires_on_annotated_parameter_mutation(self):
        diags = run(
            """
            def f(prepared: "PreparedQuery") -> None:
                prepared.order = []
            """,
            "src/repro/core/parallel.py",
            select=["R003"],
        )
        assert [d.rule for d in diags] == ["R003"]

    def test_fires_on_producer_result_mutation(self):
        diags = run(
            """
            def f(matcher, query):
                p = matcher.prepare(query)
                p.cpi.candidates[0] = []
            """,
            "src/repro/core/parallel.py",
            select=["R003"],
        )
        assert len(diags) == 1

    def test_near_miss_rebinding_passes(self):
        diags = run(
            """
            def f(plan, other):
                plan = other
                return plan
            """,
            "src/repro/core/parallel.py",
            select=["R003"],
        )
        assert diags == []

    def test_near_miss_plan_container_passes(self):
        # the worker-side plan LRU holds plans; inserting is not mutation
        diags = run(
            """
            def f(key, plan):
                plans: "OrderedDict[int, PreparedQuery]" = get_cache()
                plans[key] = plan
            """,
            "src/repro/core/parallel.py",
            select=["R003"],
        )
        assert diags == []

    def test_excluded_in_builder_modules(self):
        diags = run(
            """
            def f(cpi, tree):
                cpi.tree = tree
            """,
            "src/repro/core/cpi_builder.py",
            select=["R003"],
        )
        assert diags == []

    def test_fires_on_segment_write_outside_pack(self):
        diags = run(
            """
            def patch(segment, value):
                segment.buf[0] = value
            """,
            "src/repro/core/shm.py",
            select=["R003"],
        )
        assert [d.rule for d in diags] == ["R003"]
        assert "read-only once published" in diags[0].message

    def test_fires_on_word_view_write_in_ingest(self):
        diags = run(
            """
            def fixup(words):
                words[3] += 1
            """,
            "src/repro/graph/ingest.py",
            select=["R003"],
        )
        assert len(diags) == 1

    def test_near_miss_segment_write_inside_pack_passes(self):
        diags = run(
            """
            def pack_segment(buffer, kind, sections):
                words = memoryview(buffer).cast("i")
                words[0] = kind
            """,
            "src/repro/core/shm.py",
            select=["R003"],
        )
        assert diags == []

    def test_near_miss_segment_write_outside_shm_modules_passes(self):
        # the discipline is scoped to the segment-owning modules
        diags = run(
            """
            def f(words):
                words[0] = 1
            """,
            "src/repro/core/kernel.py",
            select=["R003"],
        )
        assert diags == []

    def test_fires_on_aux_array_write_outside_batch(self):
        diags = run(
            """
            def f(entry, v):
                entry.aux_flat[0] = v
            """,
            "src/repro/core/parallel.py",
            select=["R003"],
        )
        assert [d.rule for d in diags] == ["R003"]
        assert "auxiliary adjacency" in diags[0].message

    def test_fires_on_aux_augmented_write(self):
        diags = run(
            """
            def f(entry):
                entry.aux_indptr[2] += 1
            """,
            "src/repro/core/kernel.py",
            select=["R003"],
        )
        assert len(diags) == 1

    def test_near_miss_aux_write_inside_batch_passes(self):
        diags = run(
            """
            def _build(flat, aux_flat, v):
                aux_flat[0] = v
            """,
            "src/repro/core/batch.py",
            select=["R003"],
        )
        assert diags == []

    def test_near_miss_aux_like_name_passes(self):
        # "aux_flats" is not an AuxEntry array name
        diags = run(
            """
            def f(aux_flats, v):
                aux_flats[0] = v
            """,
            "src/repro/core/parallel.py",
            select=["R003"],
        )
        assert diags == []

    # -- the dynamic-repair carve-out (PR 8) ---------------------------
    def test_repair_function_in_dynamic_module_is_exempt(self):
        diags = run(
            """
            def _repair_sync(self, reg):
                prepared = reg.prepared
                prepared.phase_times["cpi_repair"] = 0.0
            """,
            "src/repro/core/dynamic.py",
            select=["R003"],
        )
        assert diags == []

    def test_non_repair_function_in_dynamic_module_still_fires(self):
        diags = run(
            """
            def register(self, query):
                prepared = self._matcher.prepare(query)
                prepared.order = []
            """,
            "src/repro/core/dynamic.py",
            select=["R003"],
        )
        assert [d.rule for d in diags] == ["R003"]

    def test_repair_function_outside_dynamic_module_still_fires(self):
        diags = run(
            """
            def repair_plan(plan):
                plan.order = []
            """,
            "src/repro/core/parallel.py",
            select=["R003"],
        )
        assert [d.rule for d in diags] == ["R003"]


# ----------------------------------------------------------------------
# R004 deterministic-iteration
# ----------------------------------------------------------------------
class TestR004:
    PATH = "src/repro/core/ordering.py"

    def test_fires_on_loop_over_set(self):
        diags = run(
            """
            def f(xs):
                pending = set(xs)
                for v in pending:
                    print(v)
            """,
            self.PATH,
            select=["R004"],
        )
        assert [d.rule for d in diags] == ["R004"]

    def test_fires_on_comprehension_over_set_algebra(self):
        diags = run(
            """
            def f(a, b):
                left = set(a)
                return [v for v in left - set(b)]
            """,
            self.PATH,
            select=["R004"],
        )
        assert len(diags) == 1

    def test_fires_on_cand_sets_subscript(self):
        diags = run(
            """
            def f(cpi, u):
                for v in cpi.cand_sets[u]:
                    print(v)
            """,
            self.PATH,
            select=["R004"],
        )
        assert len(diags) == 1

    def test_near_miss_sorted_wrapper_passes(self):
        diags = run(
            """
            def f(xs):
                pending = set(xs)
                for v in sorted(pending):
                    print(v)
            """,
            self.PATH,
            select=["R004"],
        )
        assert diags == []

    def test_near_miss_list_iteration_passes(self):
        diags = run(
            """
            def f(xs):
                pending = list(xs)
                for v in pending:
                    print(v)
            """,
            self.PATH,
            select=["R004"],
        )
        assert diags == []

    def test_not_scoped_to_other_modules(self):
        diags = run(
            "def f(xs):\n    for v in set(xs):\n        print(v)\n",
            "src/repro/core/decomposition.py",
            select=["R004"],
        )
        assert diags == []


# ----------------------------------------------------------------------
# R005 no-wallclock-in-core
# ----------------------------------------------------------------------
class TestR005:
    def test_fires_on_perf_counter_call(self):
        diags = run(
            """
            import time

            def f():
                return time.perf_counter()
            """,
            "src/repro/core/foo.py",
            select=["R005"],
        )
        assert [d.rule for d in diags] == ["R005"]
        assert "monotonic_now" in diags[0].message

    def test_fires_on_clock_from_import(self):
        diags = run(
            "from time import monotonic\n",
            "src/repro/core/foo.py",
            select=["R005"],
        )
        assert len(diags) == 1

    def test_fires_on_datetime_now(self):
        diags = run(
            """
            import datetime

            def f():
                return datetime.datetime.now()
            """,
            "src/repro/core/foo.py",
            select=["R005"],
        )
        assert len(diags) == 1

    def test_near_miss_sleep_passes(self):
        diags = run(
            "import time\n\ndef f():\n    time.sleep(0.1)\n",
            "src/repro/core/foo.py",
            select=["R005"],
        )
        assert diags == []

    def test_exempt_in_stats_and_matcher(self):
        source = "import time\n\ndef f():\n    return time.perf_counter()\n"
        for exempt in ("src/repro/core/stats.py", "src/repro/core/matcher.py"):
            assert run(source, exempt, select=["R005"]) == []


# ----------------------------------------------------------------------
# R006 no-swallowed-exceptions
# ----------------------------------------------------------------------
class TestR006:
    PATH = "src/repro/core/parallel.py"

    def test_fires_on_bare_except(self):
        diags = run(
            """
            def f(x):
                try:
                    x()
                except:
                    pass
            """,
            self.PATH,
            select=["R006"],
        )
        assert [d.rule for d in diags] == ["R006"]

    def test_fires_on_broad_except_pass(self):
        diags = run(
            """
            def f(x):
                try:
                    x()
                except Exception:
                    pass
            """,
            "src/repro/cli.py",
            select=["R006"],
        )
        assert len(diags) == 1

    def test_near_miss_specific_exception_pass_passes(self):
        diags = run(
            """
            def f(x):
                try:
                    x()
                except OSError:
                    pass
            """,
            self.PATH,
            select=["R006"],
        )
        assert diags == []

    def test_near_miss_broad_except_with_handling_passes(self):
        diags = run(
            """
            def f(x, log):
                try:
                    x()
                except Exception as exc:
                    log(exc)
                    raise
            """,
            self.PATH,
            select=["R006"],
        )
        assert diags == []

    def test_not_scoped_to_core_match(self):
        diags = run(
            "def f(x):\n    try:\n        x()\n    except:\n        pass\n",
            "src/repro/core/core_match.py",
            select=["R006"],
        )
        assert diags == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppression:
    def test_same_line_suppression(self):
        diags = run(
            "import time\n\n"
            "def f():\n"
            "    return time.perf_counter()  # repro-lint: disable=R005\n",
            "src/repro/core/foo.py",
            select=["R005"],
        )
        assert diags == []

    def test_standalone_comment_suppresses_next_line(self):
        diags = run(
            "import time\n\n"
            "def f():\n"
            "    # repro-lint: disable=R005\n"
            "    return time.perf_counter()\n",
            "src/repro/core/foo.py",
            select=["R005"],
        )
        assert diags == []

    def test_disable_file(self):
        diags = run(
            "# repro-lint: disable-file=R005\n"
            "import time\n\n"
            "def f():\n"
            "    return time.perf_counter()\n",
            "src/repro/core/foo.py",
            select=["R005"],
        )
        assert diags == []

    def test_wrong_rule_id_does_not_suppress(self):
        diags = run(
            "import time\n\n"
            "def f():\n"
            "    return time.perf_counter()  # repro-lint: disable=R001\n",
            "src/repro/core/foo.py",
            select=["R005"],
        )
        assert len(diags) == 1

    def test_pragma_inside_string_literal_is_ignored(self):
        diags = run(
            'import time\n\n'
            'def f():\n'
            '    note = "# repro-lint: disable=R005"\n'
            '    return time.perf_counter(), note\n',
            "src/repro/core/foo.py",
            select=["R005"],
        )
        assert len(diags) == 1


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError):
        run("x = 1\n", "src/repro/core/foo.py", select=["R999"])

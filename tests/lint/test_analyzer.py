"""Analyzer-level tests: file collection, parse errors, report shape,
suppression accounting, and the repo-wide zero-findings gate."""

from __future__ import annotations

from pathlib import Path

from repro.lint import PARSE_ERROR_RULE, find_root, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = "import time\n\n\ndef f():\n    return time.perf_counter()\n"


def make_tree(tmp_path: Path, source: str, relpath: str = "src/repro/core/foo.py") -> Path:
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestLintPaths:
    def test_violation_is_reported(self, tmp_path):
        make_tree(tmp_path, VIOLATION)
        report = lint_paths([tmp_path / "src"], root=tmp_path)
        assert not report.ok
        assert [d.rule for d in report.diagnostics] == ["R005"]
        assert report.diagnostics[0].path == "src/repro/core/foo.py"
        assert report.files_checked == 1

    def test_clean_tree_is_ok(self, tmp_path):
        make_tree(tmp_path, "def f():\n    return 1\n")
        report = lint_paths([tmp_path / "src"], root=tmp_path)
        assert report.ok
        assert report.diagnostics == []

    def test_out_of_scope_files_are_not_checked(self, tmp_path):
        make_tree(tmp_path, VIOLATION, relpath="src/other/foo.py")
        report = lint_paths([tmp_path / "src"], root=tmp_path)
        assert report.ok
        assert report.files_checked == 0

    def test_parse_error_becomes_E001(self, tmp_path):
        make_tree(tmp_path, "def f(:\n")
        report = lint_paths([tmp_path / "src"], root=tmp_path)
        assert [d.rule for d in report.diagnostics] == [PARSE_ERROR_RULE]
        assert not report.ok

    def test_suppressed_findings_are_counted_not_reported(self, tmp_path):
        make_tree(
            tmp_path,
            "import time\n\n\ndef f():\n"
            "    return time.perf_counter()  # repro-lint: disable=R005\n",
        )
        report = lint_paths([tmp_path / "src"], root=tmp_path)
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "R005"

    def test_select_narrows_rules(self, tmp_path):
        make_tree(tmp_path, VIOLATION)
        report = lint_paths([tmp_path / "src"], root=tmp_path, select=["R006"])
        assert report.ok

    def test_single_file_argument(self, tmp_path):
        target = make_tree(tmp_path, VIOLATION)
        report = lint_paths([target], root=tmp_path)
        assert len(report.diagnostics) == 1

    def test_diagnostics_are_sorted(self, tmp_path):
        make_tree(
            tmp_path,
            "import time\n\n\ndef f():\n"
            "    a = time.perf_counter()\n"
            "    b = time.monotonic()\n"
            "    return a + b\n",
        )
        report = lint_paths([tmp_path / "src"], root=tmp_path)
        keys = [d.sort_key for d in report.diagnostics]
        assert keys == sorted(keys)

    def test_json_shape(self, tmp_path):
        make_tree(tmp_path, VIOLATION)
        payload = lint_paths([tmp_path / "src"], root=tmp_path).to_dict()
        assert payload["version"] == 2
        assert payload["engine_version"]
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert {r["id"] for r in payload["rules"]} == {
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009",
        }
        diag = payload["diagnostics"][0]
        assert set(diag) == {"rule", "path", "line", "column", "message"}
        assert set(payload["rule_times_s"]) == {r["id"] for r in payload["rules"]}
        assert all(t >= 0 for t in payload["rule_times_s"].values())
        assert set(payload["summary_cache"]) == {"hits", "misses"}


class TestFindRoot:
    def test_walks_up_to_pyproject(self, tmp_path):
        make_tree(tmp_path, "x = 1\n")
        assert find_root(tmp_path / "src" / "repro" / "core") == tmp_path

    def test_repo_root_is_found(self):
        assert find_root(Path(__file__).parent) == REPO_ROOT


class TestRepoGate:
    """The acceptance gate: the tree this test runs in must be clean."""

    def test_src_repro_has_zero_findings(self):
        report = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        assert report.diagnostics == [], report.render()

    def test_core_and_lint_carry_zero_suppressions(self):
        report = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        sensitive = [
            d
            for d in report.suppressed
            if d.path.startswith(("src/repro/core/", "src/repro/lint/"))
        ]
        assert sensitive == [], [d.render() for d in sensitive]

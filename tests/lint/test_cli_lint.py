"""CLI-level tests for ``cfl-match lint``: exit codes, rule listing,
JSON output, report files, diff-scoped runs and the summary cache."""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = "import time\n\n\ndef f():\n    return time.perf_counter()\n"


def make_tree(tmp_path: Path, source: str) -> Path:
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    target = tmp_path / "src" / "repro" / "core" / "foo.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)
    return target


def test_clean_repo_exits_zero(capsys):
    code = main(["lint", str(REPO_ROOT / "src" / "repro"), "--root", str(REPO_ROOT)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_violation_exits_one(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    code = main(["lint", str(tmp_path / "src"), "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "R005" in out
    assert "src/repro/core/foo.py" in out


def test_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006"):
        assert rule_id in out


def test_json_to_stdout(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    code = main(
        ["lint", str(tmp_path / "src"), "--root", str(tmp_path), "--json", "-"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["ok"] is False
    assert payload["diagnostics"][0]["rule"] == "R005"


def test_json_to_file(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    out_path = tmp_path / "lint-report.json"
    code = main(
        [
            "lint", str(tmp_path / "src"),
            "--root", str(tmp_path),
            "--json", str(out_path),
        ]
    )
    capsys.readouterr()
    assert code == 1
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is False
    assert payload["version"] == 2


def test_select_specific_rule(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    code = main(
        [
            "lint", str(tmp_path / "src"),
            "--root", str(tmp_path),
            "--select", "R006",
        ]
    )
    capsys.readouterr()
    assert code == 0


def test_unknown_rule_exits_two(tmp_path, capsys):
    make_tree(tmp_path, "x = 1\n")
    code = main(
        [
            "lint", str(tmp_path / "src"),
            "--root", str(tmp_path),
            "--select", "R999",
        ]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule" in err


# ----------------------------------------------------------------------
# --sarif / --no-cache
# ----------------------------------------------------------------------
def test_sarif_report(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    sarif_path = tmp_path / "lint.sarif"
    code = main(
        [
            "lint", str(tmp_path / "src"),
            "--root", str(tmp_path),
            "--sarif", str(sarif_path),
        ]
    )
    capsys.readouterr()
    assert code == 1
    payload = json.loads(sarif_path.read_text())
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert "R005" in {r["id"] for r in run["tool"]["driver"]["rules"]}
    result = next(r for r in run["results"] if r["ruleId"] == "R005")
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/core/foo.py"
    assert location["region"]["startLine"] >= 1
    assert location["region"]["startColumn"] >= 1  # SARIF columns are 1-based


def test_no_cache_skips_the_summary_cache_file(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    main(["lint", str(tmp_path / "src"), "--root", str(tmp_path), "--no-cache"])
    capsys.readouterr()
    assert not (tmp_path / ".lint-cache.json").exists()
    main(["lint", str(tmp_path / "src"), "--root", str(tmp_path)])
    capsys.readouterr()
    assert (tmp_path / ".lint-cache.json").exists()


# ----------------------------------------------------------------------
# --changed
# ----------------------------------------------------------------------
def git(cwd: Path, *argv: str) -> None:
    subprocess.run(["git", *argv], cwd=cwd, check=True, capture_output=True)


def init_repo(tmp_path: Path) -> None:
    git(tmp_path, "init", "-q")
    git(tmp_path, "config", "user.email", "lint@example.invalid")
    git(tmp_path, "config", "user.name", "lint")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-q", "-m", "seed")


def test_changed_lints_only_the_diffed_file(tmp_path, capsys):
    make_tree(tmp_path, "def f():\n    return 1\n")
    # a violation already committed elsewhere must NOT be picked up
    other = tmp_path / "src" / "repro" / "core" / "bar.py"
    other.write_text(VIOLATION)
    init_repo(tmp_path)
    (tmp_path / "src" / "repro" / "core" / "foo.py").write_text(VIOLATION)
    code = main(["lint", "--changed", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "src/repro/core/foo.py" in out
    assert "bar.py" not in out


def test_changed_includes_untracked_files(tmp_path, capsys):
    make_tree(tmp_path, "def f():\n    return 1\n")
    init_repo(tmp_path)
    new = tmp_path / "src" / "repro" / "core" / "new.py"
    new.write_text(VIOLATION)
    code = main(["lint", "--changed", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "src/repro/core/new.py" in out


def test_changed_with_no_changes_exits_zero(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    init_repo(tmp_path)
    code = main(["lint", "--changed", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "no changed Python files" in out


def test_changed_without_git_exits_two(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    code = main(["lint", "--changed", "--root", str(tmp_path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "--changed needs git" in err


def test_changed_reports_identically_to_a_full_run(tmp_path, capsys):
    """A one-file --changed run must agree with a full run restricted to
    that file — the dataflow project spans the rule-scope modules either
    way — and the second (warm-cache) run must be fast."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    shm = tmp_path / "src" / "repro" / "core" / "shm.py"
    shm.parent.mkdir(parents=True)
    leak = (
        "from multiprocessing.shared_memory import SharedMemory\n\n\n"
        "def publish():\n"
        '    seg = SharedMemory("q", True, 64)\n'
        "    seg.close()\n"
    )
    shm.write_text(leak)
    init_repo(tmp_path)
    shm.write_text(leak + "\n\nTOUCHED = True\n")
    full = main(
        [
            "lint", str(shm),
            "--root", str(tmp_path),
            "--json", str(tmp_path / "full.json"),
        ]
    )
    started = time.perf_counter()
    changed = main(
        [
            "lint", "--changed",
            "--root", str(tmp_path),
            "--json", str(tmp_path / "changed.json"),
        ]
    )
    elapsed = time.perf_counter() - started
    capsys.readouterr()
    assert full == changed == 1
    full_payload = json.loads((tmp_path / "full.json").read_text())
    changed_payload = json.loads((tmp_path / "changed.json").read_text())
    assert changed_payload["diagnostics"] == full_payload["diagnostics"]
    assert changed_payload["summary_cache"]["hits"] >= 1  # warm cache
    assert elapsed < 2.0

"""CLI-level tests for ``cfl-match lint``: exit codes, rule listing,
JSON output, and report files."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = "import time\n\n\ndef f():\n    return time.perf_counter()\n"


def make_tree(tmp_path: Path, source: str) -> Path:
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    target = tmp_path / "src" / "repro" / "core" / "foo.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)
    return target


def test_clean_repo_exits_zero(capsys):
    code = main(["lint", str(REPO_ROOT / "src" / "repro"), "--root", str(REPO_ROOT)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_violation_exits_one(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    code = main(["lint", str(tmp_path / "src"), "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "R005" in out
    assert "src/repro/core/foo.py" in out


def test_list_rules(capsys):
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006"):
        assert rule_id in out


def test_json_to_stdout(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    code = main(
        ["lint", str(tmp_path / "src"), "--root", str(tmp_path), "--json", "-"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["ok"] is False
    assert payload["diagnostics"][0]["rule"] == "R005"


def test_json_to_file(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    out_path = tmp_path / "lint-report.json"
    code = main(
        [
            "lint", str(tmp_path / "src"),
            "--root", str(tmp_path),
            "--json", str(out_path),
        ]
    )
    capsys.readouterr()
    assert code == 1
    payload = json.loads(out_path.read_text())
    assert payload["ok"] is False
    assert payload["version"] == 1


def test_select_specific_rule(tmp_path, capsys):
    make_tree(tmp_path, VIOLATION)
    code = main(
        [
            "lint", str(tmp_path / "src"),
            "--root", str(tmp_path),
            "--select", "R006",
        ]
    )
    capsys.readouterr()
    assert code == 0


def test_unknown_rule_exits_two(tmp_path, capsys):
    make_tree(tmp_path, "x = 1\n")
    code = main(
        [
            "lint", str(tmp_path / "src"),
            "--root", str(tmp_path),
            "--select", "R999",
        ]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule" in err

"""Unit tests for the interprocedural dataflow engine: CFG shapes
(exception edges, finally duplication, with-exit nodes), closure
capture, call resolution, function summaries and the content-hash
summary cache."""

from __future__ import annotations

import ast
import json
import textwrap

from repro.lint.dataflow import cfg as cfgmod
from repro.lint.dataflow.callgraph import DataflowProject, module_name_of
from repro.lint.dataflow.cfg import build_cfg
from repro.lint.dataflow.scopes import closure_captured_names
from repro.lint.dataflow.summaries import (
    SummaryCache,
    compute_summaries,
    file_hash,
    load_or_compute,
)


def func_of(source: str, name: str = "f") -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    raise AssertionError(f"no function {name!r} in fixture")


def reachable_from(cfg, start):
    seen = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node.index in seen:
            continue
        seen.add(node.index)
        for succ, _kind in cfg.successors(node):
            stack.append(succ)
    return seen


def exception_successors(cfg, node):
    return [
        succ for succ, kind in cfg.successors(node) if kind == cfgmod.EDGE_EXCEPTION
    ]


# ----------------------------------------------------------------------
# control-flow graphs
# ----------------------------------------------------------------------
class TestCfg:
    def test_except_exception_leaves_residual_interrupt_edge(self):
        cfg = build_cfg(
            func_of(
                """
                def f():
                    try:
                        helper()
                    except Exception:
                        cleanup()
                """
            )
        )
        (call_node,) = cfg.stmt_nodes(4)
        targets = exception_successors(cfg, call_node)
        assert any(n.kind == cfgmod.HANDLER for n in targets)
        # a KeyboardInterrupt is not caught: the raise still escapes
        assert cfg.exit_raise in targets

    def test_except_base_exception_terminates_propagation(self):
        cfg = build_cfg(
            func_of(
                """
                def f():
                    try:
                        helper()
                    except BaseException:
                        cleanup()
                """
            )
        )
        (call_node,) = cfg.stmt_nodes(4)
        targets = exception_successors(cfg, call_node)
        assert cfg.exit_raise not in targets
        assert {n.kind for n in targets} == {cfgmod.HANDLER}

    def test_returns_route_through_the_finally_copy(self):
        cfg = build_cfg(
            func_of(
                """
                def f():
                    try:
                        return helper()
                    except Exception:
                        return None
                    finally:
                        cleanup()
                """
            )
        )
        for line in (4, 6):  # return in the body and return in the handler
            (ret,) = cfg.stmt_nodes(line)
            normals = [
                succ
                for succ, kind in cfg.successors(ret)
                if kind == cfgmod.EDGE_NORMAL
            ]
            assert cfg.exit_normal not in normals
            assert cfg.exit_normal.index in reachable_from(cfg, ret)
        # the finally body is duplicated per continuation (return + raise)
        assert len(cfg.stmt_nodes(8)) >= 2

    def test_with_block_gets_synthetic_exit_nodes(self):
        cfg = build_cfg(
            func_of(
                """
                def f(seg):
                    with seg:
                        helper()
                """
            )
        )
        assert any(n.kind == cfgmod.WITH_EXIT for n in cfg.nodes)
        (call_node,) = cfg.stmt_nodes(4)
        # __exit__ runs on the exceptional continuation too
        assert any(
            n.kind == cfgmod.WITH_EXIT
            for n in exception_successors(cfg, call_node)
        )

    def test_while_true_has_no_false_normal_exit(self):
        cfg = build_cfg(
            func_of(
                """
                def f():
                    while True:
                        helper()
                """
            )
        )
        reached = reachable_from(cfg, cfg.entry)
        assert cfg.exit_normal.index not in reached
        assert cfg.exit_raise.index in reached


# ----------------------------------------------------------------------
# scopes
# ----------------------------------------------------------------------
class TestScopes:
    def test_closure_captured_names_sees_directly_nested_defs(self):
        func = func_of(
            """
            def f():
                seg = alloc()
                other = 1

                def release():
                    seg.close()

                return release, other
            """
        )
        captured = closure_captured_names(func)
        assert "seg" in captured
        assert "other" not in captured


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
STORE_SRC = """
class Store:
    def open(self):
        return self._prepare()

    def _prepare(self):
        return 1


def make_store():
    return Store()
"""


def first_call(func_node: ast.AST) -> ast.Call:
    return next(n for n in ast.walk(func_node) if isinstance(n, ast.Call))


class TestCallGraph:
    def test_module_name_of(self):
        assert module_name_of("src/repro/core/shm.py") == "repro.core.shm"
        assert module_name_of("src/repro/graph/__init__.py") == "repro.graph"

    def test_resolves_self_method(self):
        project = DataflowProject()
        info = project.add_module("src/repro/core/a.py", STORE_SRC)
        caller = info.functions["Store.open"]
        callee = project.resolve_callable(
            info, caller, first_call(caller.node).func
        )
        assert callee is not None
        assert callee.qualname == "Store._prepare"

    def test_resolves_across_modules_through_imports(self):
        project = DataflowProject()
        project.add_module("src/repro/core/a.py", STORE_SRC)
        b = project.add_module(
            "src/repro/core/b.py",
            "from repro.core.a import make_store\n\n\n"
            "def g():\n    return make_store()\n",
        )
        caller = b.functions["g"]
        callee = project.resolve_callable(b, caller, first_call(caller.node).func)
        assert callee is not None
        assert (callee.relpath, callee.qualname) == (
            "src/repro/core/a.py",
            "make_store",
        )

    def test_syntax_error_module_is_skipped(self):
        project = DataflowProject()
        assert project.add_module("src/repro/core/bad.py", "def f(:\n") is None
        assert "src/repro/core/bad.py" not in project.modules


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
SHM_REL = "src/repro/core/shm.py"
SHM_SRC = textwrap.dedent(
    """
    from multiprocessing.shared_memory import SharedMemory


    def _open(size):
        seg = SharedMemory("scratch", True, size)
        return seg


    def open_public(size):
        return _open(size)


    def discard(seg):
        seg.unlink()
    """
)


def summarized(source: str, relpath: str = SHM_REL) -> DataflowProject:
    project = DataflowProject()
    project.add_module(relpath, textwrap.dedent(source))
    compute_summaries(project)
    return project


class TestSummaries:
    def test_resource_returns_composes_through_helpers(self):
        project = summarized(SHM_SRC)
        assert project.summaries[(SHM_REL, "_open")].resource_returns == "created"
        assert (
            project.summaries[(SHM_REL, "open_public")].resource_returns
            == "created"
        )

    def test_unlink_parameter_effect(self):
        project = summarized(SHM_SRC)
        assert project.summaries[(SHM_REL, "discard")].may_unlink_params == (0,)

    def test_returns_tainted_and_its_sanitized_near_miss(self):
        rel = "src/repro/core/kernel.py"
        project = summarized(
            """
            import numpy as np


            def total(arr):
                return np.sum(arr)


            def clean_total(arr):
                return int(np.sum(arr))
            """,
            relpath=rel,
        )
        assert project.summaries[(rel, "total")].returns_tainted
        assert not project.summaries[(rel, "clean_total")].returns_tainted

    def test_commit_and_mutation_summaries(self):
        rel = "src/repro/graph/dynamic.py"
        project = summarized(
            """
            class DynamicGraph:
                def _commit(self):
                    self._version += 1
                    self._log.append(("touch",))

                def _wipe(self, u):
                    self.adj[u].clear()

                def clear_vertex(self, u):
                    self._wipe(u)
                    self._commit()
            """,
            relpath=rel,
        )
        assert project.summaries[(rel, "DynamicGraph._commit")].is_commit
        wipe = project.summaries[(rel, "DynamicGraph._wipe")]
        assert wipe.mutates and not wipe.always_commits
        clear = project.summaries[(rel, "DynamicGraph.clear_vertex")]
        assert clear.always_commits and not clear.mutates


# ----------------------------------------------------------------------
# summary cache
# ----------------------------------------------------------------------
def fresh_project(source: str = SHM_SRC) -> DataflowProject:
    project = DataflowProject()
    project.add_module(SHM_REL, source)
    return project


class TestSummaryCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache_path = tmp_path / ".lint-cache.json"
        first = fresh_project()
        load_or_compute(first, cache_path)
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        assert cache_path.is_file()
        second = fresh_project()
        load_or_compute(second, cache_path)
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        assert second.summaries == first.summaries

    def test_content_drift_invalidates(self, tmp_path):
        cache_path = tmp_path / ".lint-cache.json"
        load_or_compute(fresh_project(), cache_path)
        drifted = fresh_project(SHM_SRC + "\n\nEXTRA = 1\n")
        load_or_compute(drifted, cache_path)
        assert (drifted.cache_hits, drifted.cache_misses) == (0, 1)

    def test_engine_version_drift_invalidates(self, tmp_path):
        cache_path = tmp_path / ".lint-cache.json"
        load_or_compute(fresh_project(), cache_path)
        data = json.loads(cache_path.read_text())
        data["engine"] = "0.0"
        cache_path.write_text(json.dumps(data))
        cache = SummaryCache(cache_path)
        assert cache.load_matching({SHM_REL: file_hash(SHM_SRC)}) is None

    def test_file_set_drift_invalidates(self, tmp_path):
        cache_path = tmp_path / ".lint-cache.json"
        load_or_compute(fresh_project(), cache_path)
        cache = SummaryCache(cache_path)
        grown = {
            SHM_REL: file_hash(SHM_SRC),
            "src/repro/core/extra.py": "0" * 64,
        }
        assert cache.load_matching(grown) is None

    def test_corrupt_cache_is_a_miss(self, tmp_path):
        cache_path = tmp_path / ".lint-cache.json"
        cache_path.write_text("{not json")
        cache = SummaryCache(cache_path)
        assert cache.load_matching({SHM_REL: file_hash(SHM_SRC)}) is None

    def test_no_cache_path_still_computes(self):
        project = fresh_project()
        load_or_compute(project, None)
        assert project.summaries
        assert project.cache_misses == 1

"""CLI tests for the generate and explain subcommands."""

import pytest

from repro.cli import main
from repro.graph import save_graph
from repro.workloads.paper_graphs import figure3_example
from repro.workloads.store import load_workload


class TestGenerate:
    def test_writes_workload(self, tmp_path, capsys):
        out = tmp_path / "wl"
        code = main(
            [
                "generate", "--dataset", "yeast", "--scale", "tiny",
                "--count", "2", "--query-sizes", "5", "--seed", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        data, sets = load_workload(out)
        assert set(sets) == {"q5S", "q5N"}
        assert all(len(qs) == 2 for qs in sets.values())
        assert all(q.num_vertices == 5 for qs in sets.values() for q in qs)
        assert "workload written" in capsys.readouterr().out

    def test_generated_queries_embed(self, tmp_path):
        from repro.core import CFLMatch

        out = tmp_path / "wl"
        main(
            [
                "generate", "--dataset", "hprd", "--scale", "tiny",
                "--count", "1", "--query-sizes", "4", "--out", str(out),
            ]
        )
        data, sets = load_workload(out)
        matcher = CFLMatch(data)
        for queries in sets.values():
            for query in queries:
                assert matcher.count(query, limit=1) >= 1


class TestExplain:
    @pytest.fixture
    def files(self, tmp_path):
        ex = figure3_example()
        dpath, qpath = tmp_path / "d.graph", tmp_path / "q.graph"
        save_graph(ex.data, dpath)
        save_graph(ex.query, qpath)
        return str(dpath), str(qpath)

    def test_explain_renders_plan(self, files, capsys):
        data, query = files
        assert main(["explain", "--data", data, "--query", query]) == 0
        out = capsys.readouterr().out
        assert "CFL-Match plan" in out
        assert "matching order:" in out
        assert "estimated embeddings" in out

"""Unit tests for result rendering."""

from repro.bench import INF, format_table, series_table, speedup


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "v"], [["a", "1"], ["longer", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "longer" in lines[3]

    def test_wide_cells_expand_columns(self):
        text = format_table(["x"], [["wide-cell-value"]])
        assert "wide-cell-value" in text


class TestSeriesTable:
    def test_rows_and_columns(self):
        text = series_table("q", ["q1", "q2"], {"A": [1.0, 2.0], "B": [3.0, INF]})
        assert "q1" in text and "q2" in text
        assert "INF" in text

    def test_missing_values_dashed(self):
        text = series_table("q", ["q1", "q2"], {"A": [1.0]})
        assert text.splitlines()[-1].strip().endswith("-")

    def test_custom_formatter(self):
        text = series_table("x", ["a"], {"s": [1234.0]}, value_formatter=lambda v: f"{v:.0f}!")
        assert "1234!" in text


class TestSpeedup:
    def test_regular_ratio(self):
        assert speedup(100.0, 10.0) == "10.0x"

    def test_inf_cases(self):
        assert speedup(INF, 5.0) == ">INF"
        assert speedup(INF, INF) == "-"
        assert speedup(10.0, INF) == "-"
        assert speedup(10.0, 0) == "-"

"""Unit tests for the benchmark harness."""

import math

import pytest

from repro.bench import INF, MATCHERS, format_ms, make_matcher, run_algorithms, run_query_set
from repro.graph import Graph
from repro.workloads.paper_graphs import figure3_example


@pytest.fixture
def simple_workload():
    ex = figure3_example()
    return ex.data, [ex.query, ex.query]


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        for name in (
            "CFL-Match", "CF-Match", "Match", "CFL-Match-TD", "CFL-Match-Naive",
            "CFL-Match-Boost", "TurboISO", "TurboISO-Boost", "QuickSI",
        ):
            assert name in MATCHERS

    def test_make_matcher(self):
        g = Graph([0], [])
        matcher = make_matcher("CFL-Match", g)
        assert matcher.name == "CFL-Match"

    def test_unknown_matcher(self):
        with pytest.raises(KeyError):
            make_matcher("NotAnAlgorithm", Graph([0], []))


class TestRunQuerySet:
    def test_aggregates(self, simple_workload):
        data, queries = simple_workload
        result = run_query_set(make_matcher("CFL-Match", data), queries, 10, 30.0, "q5S")
        assert result.queries_run == 2
        assert not result.timed_out
        assert result.avg_embeddings == 3
        assert result.avg_total_ms > 0
        assert result.avg_total_ms != INF
        assert result.avg_ordering_ms + result.avg_enumeration_ms == pytest.approx(
            result.avg_total_ms
        )
        assert result.avg_index_size > 0

    def test_exhausted_budget_is_inf(self, simple_workload):
        data, queries = simple_workload
        result = run_query_set(make_matcher("CFL-Match", data), queries, 10, 0.0, "q5S")
        assert result.timed_out
        assert result.avg_total_ms == INF
        assert math.isinf(result.avg_enumeration_ms)

    def test_empty_reports_give_inf(self):
        from repro.bench.harness import QuerySetResult

        empty = QuerySetResult(algorithm="X", query_set="q")
        assert empty.avg_total_ms == INF
        assert empty.avg_embeddings == 0.0

    def test_counter_totals_sum_across_queries(self, simple_workload):
        data, queries = simple_workload
        result = run_query_set(
            make_matcher("CFL-Match", data), queries, None, 30.0, "q5S"
        )
        totals = result.counter_totals()
        per_query = [r.counters() for r in result.reports]
        assert totals["nodes"] == sum(c["nodes"] for c in per_query) > 0
        assert totals["cpi_candidates_final"] == sum(
            c["cpi_candidates_final"] for c in per_query
        )

    def test_counter_totals_safe_for_baselines(self, simple_workload):
        """Baseline matchers only record embeddings; the CPI/search
        counters stay zero rather than erroring."""
        data, queries = simple_workload
        result = run_query_set(
            make_matcher("VF2", data), queries, None, 30.0, "q5S"
        )
        totals = result.counter_totals()
        assert totals["embeddings"] == sum(r.embeddings for r in result.reports)
        assert all(v == 0 for k, v in totals.items() if k != "embeddings")


class TestRunAlgorithms:
    def test_cross_product(self, simple_workload):
        data, queries = simple_workload
        results = run_algorithms(
            data, ["CFL-Match", "QuickSI"], {"a": queries, "b": queries}, 10, 30.0
        )
        assert len(results) == 4
        assert {(r.algorithm, r.query_set) for r in results} == {
            ("CFL-Match", "a"), ("CFL-Match", "b"),
            ("QuickSI", "a"), ("QuickSI", "b"),
        }


class TestFormatting:
    def test_format_ms(self):
        assert format_ms(INF) == "INF"
        assert format_ms(123.4) == "123"
        assert format_ms(12.34) == "12.3"
        assert format_ms(0.1234) == "0.123"

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import save_graph
from repro.workloads.paper_graphs import figure1_example, figure3_example


@pytest.fixture
def graph_files(tmp_path):
    ex = figure3_example()
    data_path = tmp_path / "data.graph"
    query_path = tmp_path / "query.graph"
    save_graph(ex.data, data_path)
    save_graph(ex.query, query_path)
    return str(data_path), str(query_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_args(self):
        args = build_parser().parse_args(
            ["match", "--data", "d", "--query", "q", "--limit", "5"]
        )
        assert args.limit == 5
        assert args.algorithm == "CFL-Match"


class TestCommands:
    def test_match_prints_embeddings(self, graph_files, capsys):
        data, query = graph_files
        assert main(["match", "--data", data, "--query", query]) == 0
        out = capsys.readouterr().out
        assert "# 3 embedding(s)" in out
        assert out.count("u0->") == 3

    def test_match_quiet(self, graph_files, capsys):
        data, query = graph_files
        main(["match", "--data", data, "--query", query, "--quiet"])
        out = capsys.readouterr().out
        assert "u0->" not in out
        assert "# 3 embedding(s)" in out

    def test_match_with_baseline(self, graph_files, capsys):
        data, query = graph_files
        main(["match", "--data", data, "--query", query, "--algorithm", "QuickSI", "--quiet"])
        assert "[QuickSI]" in capsys.readouterr().out

    def test_count(self, graph_files, capsys):
        data, query = graph_files
        assert main(["count", "--data", data, "--query", query]) == 0
        assert capsys.readouterr().out.startswith("3 embedding(s)")

    def test_count_with_limit_marks_saturation(self, graph_files, capsys):
        data, query = graph_files
        main(["count", "--data", data, "--query", query, "--limit", "2"])
        assert capsys.readouterr().out.startswith("2+")

    def test_match_workers_matches_sequential(self, tmp_path, capsys):
        """Differential: --workers 2 must emit the same embedding lines."""
        ex = figure1_example(8, 8)
        data_path, query_path = tmp_path / "d.graph", tmp_path / "q.graph"
        save_graph(ex.data, data_path)
        save_graph(ex.query, query_path)
        args = ["match", "--data", str(data_path), "--query", str(query_path)]
        assert main(args) == 0
        sequential = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        seq_lines = sorted(l for l in sequential.splitlines() if l.startswith("u0->"))
        par_lines = sorted(l for l in parallel.splitlines() if l.startswith("u0->"))
        assert seq_lines and par_lines == seq_lines

    def test_count_workers_matches_sequential(self, tmp_path, capsys):
        ex = figure1_example(8, 8)
        data_path, query_path = tmp_path / "d.graph", tmp_path / "q.graph"
        save_graph(ex.data, data_path)
        save_graph(ex.query, query_path)
        args = ["count", "--data", str(data_path), "--query", str(query_path)]
        assert main(args) == 0
        sequential = capsys.readouterr().out.split()[0]
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out.split()[0] == sequential == "8"

    def test_match_workers_rejects_baselines(self, graph_files, capsys):
        data, query = graph_files
        rc = main(
            ["match", "--data", data, "--query", query,
             "--algorithm", "QuickSI", "--workers", "2"]
        )
        assert rc == 2
        assert "requires CFL-Match" in capsys.readouterr().err

    def test_match_workers_with_limit(self, tmp_path, capsys):
        ex = figure1_example(10, 10)
        data_path, query_path = tmp_path / "d.graph", tmp_path / "q.graph"
        save_graph(ex.data, data_path)
        save_graph(ex.query, query_path)
        assert main(
            ["match", "--data", str(data_path), "--query", str(query_path),
             "--workers", "2", "--limit", "3", "--quiet"]
        ) == 0
        assert "# 3 embedding(s)" in capsys.readouterr().out

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "hprd" in out and "9460" in out

    def test_experiment_writes_output(self, tmp_path, capsys, monkeypatch):
        # patch in an instant experiment to keep the test fast
        from repro.bench import experiments

        def fake(profile):
            return experiments.ExperimentResult("fig01", "t", [("s", "table")], {})

        monkeypatch.setitem(experiments.EXPERIMENTS, "fig01", fake)
        monkeypatch.setattr("repro.cli.run_experiment", lambda n, p: fake(None))
        out_dir = tmp_path / "results"
        assert main(["experiment", "fig01", "--out", str(out_dir)]) == 0
        assert (out_dir / "fig01.txt").exists()
        assert "fig01" in capsys.readouterr().out

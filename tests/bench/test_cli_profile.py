"""The ``cfl-match profile`` command and its JSON schema contract."""

import json

import pytest

from repro.cli import main
from repro.core.profile import (
    PROFILE_SCHEMA,
    profile_query,
    validate_profile,
    validate_schema,
)
from repro.graph import save_graph
from repro.workloads.paper_graphs import figure1_example, figure3_example


@pytest.fixture
def graph_files(tmp_path):
    ex = figure3_example()
    data_path = tmp_path / "data.graph"
    query_path = tmp_path / "query.graph"
    save_graph(ex.data, data_path)
    save_graph(ex.query, query_path)
    return str(data_path), str(query_path)


class TestProfileCommand:
    def test_json_output_validates_and_has_ten_plus_counters(
        self, graph_files, capsys
    ):
        data, query = graph_files
        assert main(["profile", data, query, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_profile(payload) == []
        assert payload["embeddings"] == 3
        assert payload["status"] == "ok"
        assert len(payload["counters"]) >= 10
        assert set(payload["phase_times_s"]) == {
            "decomposition", "cpi_build", "cpi_repair", "ordering",
            "enumeration", "segment_attach",
        }

    def test_out_writes_the_same_json(self, graph_files, tmp_path, capsys):
        data, query = graph_files
        out = tmp_path / "profile.json"
        assert main(["profile", data, query, "--json", "--out", str(out)]) == 0
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(out.read_text())
        assert file_payload == stdout_payload

    def test_human_rendering_lists_counters_and_stages(self, graph_files, capsys):
        data, query = graph_files
        assert main(["profile", data, query]) == 0
        out = capsys.readouterr().out
        assert "status=ok" in out
        assert "phase times (ms):" in out
        assert "core" in out and "leaf" in out
        assert "cpi_candidates_final" in out

    def test_budget_flag_flags_the_status(self, graph_files, capsys):
        data, query = graph_files
        assert main(
            ["profile", data, query, "--json", "--max-expansions", "2"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "budget_exhausted"
        assert payload["counters"]["nodes"] <= 2
        assert validate_profile(payload) == []


class TestProfileQuery:
    def test_workers_aggregate_equals_sequential(self, tmp_path):
        ex = figure1_example(20, 100)
        sequential = profile_query(ex.data, ex.query, workers=1, count_only=False)
        aggregated = profile_query(ex.data, ex.query, workers=4, count_only=False)
        assert validate_profile(sequential) == []
        assert validate_profile(aggregated) == []
        assert aggregated["embeddings"] == sequential["embeddings"] == 20
        assert aggregated["counters"] == sequential["counters"]

    def test_workers_reject_sequential_only_budgets(self):
        ex = figure3_example()
        with pytest.raises(ValueError):
            profile_query(ex.data, ex.query, workers=2, max_expansions=5)
        with pytest.raises(ValueError):
            profile_query(ex.data, ex.query, workers=2, time_limit_s=1.0)


class TestSchema:
    def test_checked_in_schema_matches_the_module(self):
        """docs/profile.schema.json is generated from PROFILE_SCHEMA; CI
        validates profile output against the checked-in copy, so the two
        must never drift."""
        from pathlib import Path

        checked_in = json.loads(
            (Path(__file__).resolve().parents[2] / "docs" / "profile.schema.json")
            .read_text()
        )
        assert checked_in == PROFILE_SCHEMA

    def test_validator_catches_missing_and_extra_keys(self):
        ex = figure3_example()
        payload = profile_query(ex.data, ex.query)
        broken = dict(payload)
        del broken["counters"]
        assert any("counters" in e for e in validate_profile(broken))
        extra = dict(payload)
        extra["surprise"] = 1
        assert any("surprise" in e for e in validate_profile(extra))

    def test_validator_checks_types_and_enums(self):
        assert validate_schema(3, {"type": "integer"}) == []
        assert validate_schema(True, {"type": "integer"}) != []
        assert validate_schema("nope", {"type": "number"}) != []
        assert validate_schema("ok", {"enum": ["ok", "timed_out"]}) == []
        assert validate_schema("bad", {"enum": ["ok", "timed_out"]}) != []
        assert validate_schema(-1, {"type": "integer", "minimum": 0}) != []

"""Smoke tests for the experiment registry (fast settings only)."""

import pytest

from repro.bench import EXPERIMENTS, PROFILES, run_experiment
from repro.bench.experiments import Profile

#: Ultra-fast profile for CI: smallest graphs, 1-2 queries, tiny budgets.
FAST = Profile(
    name="test", dataset_scale="tiny",
    query_sizes=(4, 5, 6, 7), human_query_sizes=(4, 5, 6, 7),
    queries_per_set=1, limit=20, set_budget_s=10.0,
    sweep_vertices=(120, 240), sweep_base_vertices=150,
)


class TestRegistry:
    def test_every_planned_experiment_registered(self):
        expected = {
            "fig01", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "tab04", "fig20", "fig21", "fig22",
        }
        assert set(EXPERIMENTS) == expected

    def test_profiles_exist(self):
        assert {"smoke", "small", "paper"} <= set(PROFILES)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            run_experiment("fig01", "galactic")


class TestFig01:
    def test_cost_model_gap(self):
        result = EXPERIMENTS["fig01"](FAST)
        raw = result.raw["t_iso"]
        assert raw["bad"] > raw["good"]
        assert "fig01" in result.render()


class TestQuickExperiments:
    """Each experiment runs end-to-end on the FAST profile and renders."""

    def test_fig08_shape(self):
        result = EXPERIMENTS["fig08"](FAST, datasets=("yeast",))
        assert len(result.sections) == 1
        series = result.raw["yeast"]["series"]
        assert set(series) == {"QuickSI", "TurboISO", "CFL-Match"}
        assert len(series["CFL-Match"]) == 8  # 4 sizes x {S, N}
        rendered = result.render()
        assert "q4S" in rendered and "q7N" in rendered

    def test_fig10_ordering_only(self):
        result = EXPERIMENTS["fig10"](FAST, datasets=("yeast",))
        assert set(result.raw["yeast"]["series"]) == {"TurboISO", "CFL-Match"}

    def test_fig11_core_structures(self):
        result = EXPERIMENTS["fig11"](FAST, datasets=("yeast",))
        assert result.sections

    def test_fig12_limits_increase(self):
        result = EXPERIMENTS["fig12"](FAST, datasets=("yeast",))
        raw = result.raw["yeast"]
        assert raw["limits"] == sorted(raw["limits"])

    def test_fig13_reports_compression_ratio(self):
        result = EXPERIMENTS["fig13"](FAST, datasets=("yeast",))
        assert 0.0 <= result.raw["yeast"]["ratio"] < 1.0

    def test_fig14_variants(self):
        result = EXPERIMENTS["fig14"](FAST, datasets=("yeast",))
        assert set(result.raw["yeast"]["series"]) == {"Match", "CF-Match", "CFL-Match"}

    def test_fig15_cpi_strategies(self):
        result = EXPERIMENTS["fig15"](FAST, datasets=("yeast",))
        assert set(result.raw["yeast"]["series"]) == {
            "CFL-Match-Naive", "CFL-Match-TD", "CFL-Match",
        }

    def test_tab04_counts(self):
        result = EXPERIMENTS["tab04"](FAST, datasets=("yeast",))
        per_set = result.raw["yeast"]
        assert len(per_set) == 8
        for avg, compressed in per_set.values():
            assert avg >= 0
            assert 0 <= compressed <= FAST.queries_per_set

    def test_fig22_classes(self):
        result = EXPERIMENTS["fig22"](FAST, datasets=("yeast",))
        classes = result.raw["yeast"]["classes"]
        assert "random" in classes

    def test_fig09_enumeration_metric(self):
        result = EXPERIMENTS["fig09"](FAST, datasets=("yeast",))
        assert set(result.raw["yeast"]["series"]) == {
            "QuickSI", "TurboISO", "CFL-Match",
        }

    def test_fig16_scalability_shapes(self):
        result = EXPERIMENTS["fig16"](FAST)
        raw = result.raw
        assert set(raw) == {"vary_vertices", "vary_degree", "vary_labels"}
        assert len(raw["vary_vertices"]["total_ms"]) == len(FAST.sweep_vertices)
        assert len(raw["vary_labels"]["index_size"]) == 4
        assert all(size > 0 for size in raw["vary_labels"]["index_size"])

    def test_fig20_split_series(self):
        result = EXPERIMENTS["fig20"](FAST, datasets=("yeast",))
        series = result.raw["yeast"]["series"]
        assert "CFL-Match (ordering)" in series
        assert "TurboISO (enumeration)" in series

    def test_fig21_includes_boost(self):
        result = EXPERIMENTS["fig21"](FAST, datasets=("yeast",))
        assert "TurboISO-Boost" in result.raw["yeast"]["series"]

    def test_fig14_has_count_view(self):
        result = EXPERIMENTS["fig14"](FAST, datasets=("yeast",))
        raw = result.raw["yeast"]
        assert set(raw["count_series"]) == {"Match", "CF-Match", "CFL-Match"}
        assert len(result.sections) == 2

    def test_run_experiment_dispatch(self):
        from repro.bench import run_experiment

        result = run_experiment("fig01", "smoke")
        assert result.name == "fig01"

"""Registry-wide conformance: every registered matcher honors the
uniform API contract on shared fixtures."""

import pytest

from repro.bench import MATCHERS, make_matcher
from repro.workloads.paper_graphs import figure1_example, figure3_example

ALL_NAMES = sorted(MATCHERS)


@pytest.fixture(scope="module")
def fig3():
    return figure3_example()


@pytest.fixture(scope="module")
def fig1():
    return figure1_example(12, 15)


class TestRegistryConformance:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_search_finds_exactly_the_three_embeddings(self, name, fig3):
        matcher = make_matcher(name, fig3.data)
        assert len(set(matcher.search(fig3.query))) == 3

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_count_agrees_with_search(self, name, fig1):
        matcher = make_matcher(name, fig1.data)
        assert matcher.count(fig1.query) == 12
        assert sum(1 for _ in matcher.search(fig1.query)) == 12

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_limit_truncates(self, name, fig1):
        matcher = make_matcher(name, fig1.data)
        assert len(list(matcher.search(fig1.query, limit=4))) == 4

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_run_report_contract(self, name, fig3):
        matcher = make_matcher(name, fig3.data)
        report = matcher.run(fig3.query, limit=10, collect=True)
        assert report.embeddings == 3
        assert report.results is not None and len(report.results) == 3
        assert report.ordering_time >= 0.0
        assert report.enumeration_time >= 0.0
        assert not report.timed_out

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_matcher_exposes_name(self, name, fig3):
        matcher = make_matcher(name, fig3.data)
        assert isinstance(matcher.name, str) and matcher.name

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_no_match_is_empty_not_error(self, name):
        from repro.graph import Graph

        data = Graph([0, 0, 1], [(0, 1), (1, 2)])
        query = Graph([5, 6], [(0, 1)])
        matcher = make_matcher(name, data)
        assert list(matcher.search(query)) == []
        assert matcher.count(query) == 0

"""Tests for forest-stage ordering (Section 4.3) and stress equivalence."""

import random

from repro.baselines import VF2Match
from repro.core import CFLMatch
from repro.graph import Graph, random_connected_graph


class TestForestTreeOrdering:
    def _query_two_trees(self):
        """Core triangle (0,1,2); tree A at 1 = {3}; tree B at 2 = {4, 5}.

        Vertices 3, 4 are internal (degree 2 via their own leaf children
        6, 7, 8) so both trees survive the leaf split.
        """
        return Graph(
            [0, 1, 2, 3, 4, 5, 6, 7, 3],
            [
                (0, 1), (1, 2), (0, 2),          # core
                (1, 3), (3, 6),                  # tree A: 3 internal, 6 leaf
                (2, 4), (4, 7), (2, 8), (8, 5),  # tree B: 4, 8 internal
            ],
        )

    def test_cheaper_tree_first(self):
        query = self._query_two_trees()
        # data = query itself: each tree has exactly one embedding per
        # anchor, so ordering falls back to estimate ties -> stable order
        matcher = CFLMatch(query)
        prepared = matcher.prepare(query)
        forest = prepared.forest_order
        # both internal forest vertices appear, each before nothing of
        # its own subtree is violated
        assert set(forest) <= set(prepared.decomposition.forest)
        positions = {u: i for i, u in enumerate(forest)}
        # a tree's vertices are contiguous (trees are not interleaved)
        trees = [
            [u for u in forest if u in set(t.vertices)]
            for t in prepared.decomposition.trees
        ]
        for tree_vertices in trees:
            if len(tree_vertices) > 1:
                indexes = sorted(positions[u] for u in tree_vertices)
                assert indexes == list(range(indexes[0], indexes[-1] + 1))

    def test_forest_estimates_drive_order(self):
        """A tree with strictly more CPI embeddings is matched later."""
        # query: core edge-pair triangle (0,1,2); u3 hangs off 1; u4 off 2
        query = Graph(
            [0, 1, 2, 3, 4, 5, 6],
            [(0, 1), (1, 2), (0, 2), (1, 3), (3, 5), (2, 4), (4, 6)],
        )
        # data: one embedding for the core; vertex-3-analog has 1
        # candidate; vertex-4-analog has 3 candidates
        data = Graph(
            [0, 1, 2, 3, 4, 4, 4, 5, 6, 6, 6],
            [
                (0, 1), (1, 2), (0, 2),
                (1, 3), (3, 7),                   # single tree-A chain
                (2, 4), (2, 5), (2, 6),           # three tree-B anchors
                (4, 8), (5, 9), (6, 10),
            ],
        )
        matcher = CFLMatch(data)
        prepared = matcher.prepare(query)
        forest = prepared.forest_order
        assert forest.index(3) < forest.index(4)


class TestStressEquivalence:
    def test_medium_instances_agree_with_vf2(self):
        rng = random.Random(77)
        for _ in range(8):
            data = random_connected_graph(60, rng.randrange(30, 90), 4, rng)
            query = random_connected_graph(rng.randrange(6, 10), rng.randrange(1, 5), 3, rng)
            cfl = CFLMatch(data).count(query, limit=5000)
            vf2 = VF2Match(data).count(query, limit=5000)
            assert cfl == vf2

    def test_high_symmetry_instance(self):
        """Complete bipartite data graph with two labels: heavy NEC use."""
        left, right = 5, 5
        labels = [0] * left + [1] * right
        edges = [(i, left + j) for i in range(left) for j in range(right)]
        data = Graph(labels, edges)
        query = Graph([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        # 5 choices for the hub x P(5, 3) for the leaves
        assert CFLMatch(data).count(query) == 5 * 5 * 4 * 3
        assert len(set(CFLMatch(data).search(query))) == 300

"""Tests for the offset-based CPI storage (Section A.2)."""

import json

from repro.core import build_cpi
from repro.core.cpi_storage import CompiledCPI
from repro.testing.workloads import CONNECTED_QUERY_SCENARIOS, WorkloadSpec, generate_case
from repro.workloads.paper_graphs import figure5_example, figure7_example
from tests.conftest import random_instance


class TestCompile:
    def test_figure5_offsets(self):
        """Section A.2's own example: N_u1^u0(v0) stores positions {0, 3}
        of v5 and v8 inside u1.C."""
        ex = figure5_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        compiled = CompiledCPI.from_cpi(cpi)
        u0, u1 = ex.q("u0"), ex.q("u1")
        v0_pos = compiled.candidates[u0].index(ex.v("v0"))
        positions = compiled.child_positions(u1, v0_pos)
        stored = [compiled.vertex_at(u1, pos) for pos in positions]
        assert sorted(stored) == sorted([ex.v("v5"), ex.v("v8")])
        # the positions are offsets, not ids
        assert all(0 <= pos < len(compiled.candidates[u1]) for pos in positions)

    def test_equivalence_with_dict_representation(self, rng):
        """Every adjacency list survives compilation verbatim."""
        for _ in range(20):
            data, query = random_instance(rng)
            cpi = build_cpi(query, data, 0)
            compiled = CompiledCPI.from_cpi(cpi)
            for u in query.vertices():
                p = cpi.tree.parent[u]
                if p is None:
                    continue
                for i, v_p in enumerate(cpi.candidates[p]):
                    assert sorted(compiled.child_vertices(u, i)) == sorted(
                        cpi.child_candidates(u, v_p)
                    )

    def test_candidates_preserved(self):
        ex = figure7_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        compiled = CompiledCPI.from_cpi(cpi)
        assert compiled.candidates == cpi.candidates

    def test_size_accounting(self):
        ex = figure5_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        compiled = CompiledCPI.from_cpi(cpi)
        # candidates (10) + row_index (|u0.C|+1 = 6) + row_data (6 edges)
        assert compiled.size_in_integers() == 10 + 6 + 6

    def test_empty_rows_have_zero_span(self):
        ex = figure7_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        compiled = CompiledCPI.from_cpi(cpi)
        u1 = ex.q("u1")
        for i in range(len(compiled.candidates[ex.q("u0")])):
            span = compiled.child_positions(u1, i)
            assert isinstance(span, list)


class TestSerialization:
    """Round-trip property: serialize -> deserialize -> identical
    candidate sets and adjacency, driven by the fuzz workload generator."""

    @staticmethod
    def _compiled_for(case):
        cpi = build_cpi(case.query, case.data, 0)
        return cpi, CompiledCPI.from_cpi(cpi)

    def test_round_trip_preserves_everything(self):
        spec = WorkloadSpec(scenarios=CONNECTED_QUERY_SCENARIOS)
        for index in range(18):
            case = generate_case(512, index, spec)
            cpi, compiled = self._compiled_for(case)
            restored = CompiledCPI.from_dict(
                json.loads(json.dumps(compiled.to_dict()))
            )
            assert restored.root == compiled.root
            assert restored.parent == compiled.parent
            assert restored.candidates == compiled.candidates
            assert restored.row_index == compiled.row_index
            assert restored.row_data == compiled.row_data
            assert restored.size_in_integers() == compiled.size_in_integers()

    def test_round_trip_preserves_adjacency_semantics(self):
        spec = WorkloadSpec(scenarios=("nec-heavy", "dense", "twins"))
        for index in range(9):
            case = generate_case(1024, index, spec)
            cpi, compiled = self._compiled_for(case)
            restored = CompiledCPI.from_dict(compiled.to_dict())
            for u in case.query.vertices():
                p = cpi.tree.parent[u]
                if p is None:
                    continue
                for i, v_p in enumerate(cpi.candidates[p]):
                    assert restored.child_vertices(u, i) == compiled.child_vertices(u, i)
                    assert sorted(restored.child_vertices(u, i)) == sorted(
                        cpi.child_candidates(u, v_p)
                    )

    def test_root_parent_is_null_in_json(self):
        case = generate_case(2048, 0)
        _, compiled = self._compiled_for(case)
        payload = json.loads(json.dumps(compiled.to_dict()))
        assert payload["parent"][compiled.root] is None


class TestDecompile:
    """``to_cpi`` inverts ``from_cpi`` given the two graphs — the wire
    format the shared-plan parallel engine ships to spawn workers."""

    def test_to_cpi_round_trip(self):
        spec = WorkloadSpec(scenarios=CONNECTED_QUERY_SCENARIOS)
        for index in range(12):
            case = generate_case(4096, index, spec)
            cpi = build_cpi(case.query, case.data, 0)
            compiled = CompiledCPI.from_cpi(cpi)
            restored = compiled.to_cpi(case.query, case.data)
            assert restored.root == cpi.root
            assert restored.candidates == cpi.candidates
            assert restored.cand_sets == cpi.cand_sets
            for u in case.query.vertices():
                p = cpi.tree.parent[u]
                assert restored.tree.parent[u] == p
                if p is None:
                    continue
                for v_p in cpi.candidates[p]:
                    assert restored.child_candidates(u, v_p) == cpi.child_candidates(
                        u, v_p
                    )
            assert restored.size() == cpi.size()

    def test_to_cpi_via_json(self):
        case = generate_case(4096, 1)
        cpi = build_cpi(case.query, case.data, 0)
        payload = json.loads(json.dumps(CompiledCPI.from_cpi(cpi).to_dict()))
        restored = CompiledCPI.from_dict(payload).to_cpi(case.query, case.data)
        assert restored.candidates == cpi.candidates

"""Kernel-engine suite: the compiled flat-array loop is a drop-in
replacement for the reference backtracker.

The contract under test (see ``repro/core/kernel.py``):

* identical embeddings in identical order on every fuzz scenario;
* bit-identical ``nodes``/``backtracks``/``embeddings`` counters, and an
  identical ``injectivity_conflicts + edge_check_failures`` sum, on
  complete runs (the split may differ — the intersection attributes
  used-AND-edge-failing candidates to ``edge_check_failures``);
* identical truncation points under both work budgets and deadlines
  (``WorkBudget`` charging and the ``nodes & 1023`` deadline poll are
  aligned with the reference);
* the root-restriction, plan-cache and parallel wire paths all reuse or
  recompile the kernel correctly.
"""

import pytest

from repro.core import CFLMatch
from repro.core.core_match import CPIBacktracker
from repro.core.cpi import EMPTY_CANDIDATES
from repro.core.kernel import (
    MODE_CROSS,
    MODE_ROOT,
    MODE_TREE,
    compile_kernel_plan,
)
from repro.core.matcher import ENGINES
from repro.core.parallel import decode_plan, encode_plan, parallel_count
from repro.core.stats import SearchStats, monotonic_now
from repro.testing.workloads import (
    CONNECTED_QUERY_SCENARIOS,
    WorkloadSpec,
    generate_case,
)
from repro.workloads.paper_graphs import figure1_example, figure3_example

#: Dense enough that core slots carry backward non-tree edges (the
#: intersection path) and the search exceeds the 1024-node deadline poll.
DENSE_SPEC = WorkloadSpec(
    scenarios=("dense",), data_vertices=(60, 60), query_vertices=(7, 7)
)


def engines_for(case):
    return (
        CFLMatch(case.data, engine="reference"),
        CFLMatch(case.data, engine="kernel"),
    )


class TestEngineKnob:
    def test_engines_constant(self):
        assert ENGINES == ("kernel", "reference")

    def test_invalid_engine_rejected(self):
        ex = figure3_example()
        with pytest.raises(ValueError, match="engine"):
            CFLMatch(ex.data, engine="turbo")

    def test_default_engine_is_kernel(self):
        ex = figure3_example()
        matcher = CFLMatch(ex.data)
        assert matcher.engine == "kernel"
        assert matcher.prepare(ex.query).kernel is not None

    def test_reference_engine_compiles_no_kernel(self):
        ex = figure3_example()
        plan = CFLMatch(ex.data, engine="reference").prepare(ex.query)
        assert plan.kernel is None


class TestDifferentialSweep:
    @pytest.mark.parametrize("scenario", CONNECTED_QUERY_SCENARIOS)
    def test_embeddings_and_counters_match(self, scenario):
        spec = WorkloadSpec(scenarios=(scenario,))
        for seed in range(6):
            case = generate_case(seed, 0, spec)
            reference, kernel = engines_for(case)
            ref_stats, ker_stats = SearchStats(), SearchStats()
            ref_embeddings = list(reference.search(case.query, stats=ref_stats))
            ker_embeddings = list(kernel.search(case.query, stats=ker_stats))
            # Same embeddings in the same order (not just the same set).
            assert ref_embeddings == ker_embeddings, case.describe()
            assert ref_stats.nodes == ker_stats.nodes, case.describe()
            assert ref_stats.backtracks == ker_stats.backtracks, case.describe()
            assert ref_stats.embeddings == ker_stats.embeddings, case.describe()
            # Each rejected candidate is counted exactly once by both
            # engines; only the inj/edge split may differ.
            assert (
                ref_stats.injectivity_conflicts + ref_stats.edge_check_failures
                == ker_stats.injectivity_conflicts + ker_stats.edge_check_failures
            ), case.describe()

    @pytest.mark.parametrize("scenario", CONNECTED_QUERY_SCENARIOS)
    def test_counts_match(self, scenario):
        spec = WorkloadSpec(scenarios=(scenario,))
        for seed in range(3):
            case = generate_case(seed, 0, spec)
            reference, kernel = engines_for(case)
            assert reference.count(case.query) == kernel.count(case.query)

    def test_limit_truncation_same_prefix(self):
        case = generate_case(0, 0, DENSE_SPEC)
        reference, kernel = engines_for(case)
        for limit in (1, 7, 100):
            assert list(reference.search(case.query, limit=limit)) == list(
                kernel.search(case.query, limit=limit)
            )


class TestPinnedPaperCounters:
    """Both engines reproduce the hand-checked Fig. 1 / Fig. 3 counters
    exactly — including the rejection counters (on these workloads no
    candidate is simultaneously occupied and edge-failing)."""

    def test_figure3_exact(self):
        ex = figure3_example()
        reports = {
            engine: CFLMatch(ex.data, engine=engine).run(ex.query)
            for engine in ENGINES
        }
        for engine, report in reports.items():
            assert report.embeddings == 3, engine
            assert report.stats.nodes == 8, engine
            assert report.stats.backtracks == 3, engine
        ref, ker = reports["reference"].stats, reports["kernel"].stats
        assert ref.to_dict() == ker.to_dict()

    @pytest.mark.parametrize("paths,fan", [(20, 100), (7, 30)])
    def test_figure1_exact(self, paths, fan):
        ex = figure1_example(paths, fan)
        reports = {
            engine: CFLMatch(ex.data, engine=engine).run(ex.query)
            for engine in ENGINES
        }
        for engine, report in reports.items():
            assert report.embeddings == paths, engine
            assert report.stats.nodes == 3 * paths + 3, engine
            assert report.stats.backtracks == 2, engine
        ref, ker = reports["reference"].stats, reports["kernel"].stats
        assert ref.to_dict() == ker.to_dict()


class TestTruncationParity:
    def test_budget_truncation(self):
        case = generate_case(0, 0, DENSE_SPEC)
        reference, kernel = engines_for(case)
        for max_expansions in (1, 17, 256, 4096):
            ref = reference.run(case.query, max_expansions=max_expansions)
            ker = kernel.run(case.query, max_expansions=max_expansions)
            assert ref.status == ker.status == "budget_exhausted"
            assert ref.embeddings == ker.embeddings
            assert ref.stats.nodes == ker.stats.nodes <= max_expansions

    def test_deadline_truncation(self):
        # Prepare without a deadline, then run against one already in the
        # past: both engines deterministically stop at the first poll
        # (every 1024 nodes / 256 emitted embeddings), so the truncated
        # counters must agree exactly.
        case = generate_case(0, 0, DENSE_SPEC)
        reference, kernel = engines_for(case)
        ref_plan = reference.prepare(case.query)
        ker_plan = kernel.prepare(case.query)
        assert reference.run(case.query, prepared=ref_plan).stats.nodes > 1024
        past = monotonic_now() - 1.0
        ref = reference.run(
            case.query, prepared=ref_plan, deadline=past, count_only=True
        )
        ker = kernel.run(
            case.query, prepared=ker_plan, deadline=past, count_only=True
        )
        assert ref.status == ker.status == "timed_out"
        assert ref.stats.nodes == ker.stats.nodes
        assert ref.embeddings == ker.embeddings


class TestRootRestriction:
    def test_restricted_search_parity(self):
        case = generate_case(1, 0, DENSE_SPEC)
        reference, kernel = engines_for(case)
        ref_plan = reference.prepare(case.query)
        ker_plan = kernel.prepare(case.query)
        roots = ref_plan.cpi.candidates[ref_plan.root]
        assert roots
        for subset in (roots[:1], roots[::2], roots):
            ref_stats, ker_stats = SearchStats(), SearchStats()
            ref = list(
                reference.search(
                    case.query, prepared=ref_plan,
                    root_candidates=list(subset), stats=ref_stats,
                )
            )
            ker = list(
                kernel.search(
                    case.query, prepared=ker_plan,
                    root_candidates=list(subset), stats=ker_stats,
                )
            )
            assert ref == ker
            assert ref_stats.nodes == ker_stats.nodes

    def test_restriction_partitions_results(self):
        # Per-root kernel restrictions cover the full result set exactly
        # once — the invariant the parallel engine relies on.
        case = generate_case(2, 0, DENSE_SPEC)
        kernel = CFLMatch(case.data, engine="kernel")
        plan = kernel.prepare(case.query)
        full = list(kernel.search(case.query, prepared=plan))
        pieces = []
        for root in plan.cpi.candidates[plan.root]:
            pieces.extend(
                kernel.search(case.query, prepared=plan, root_candidates=[root])
            )
        assert sorted(pieces) == sorted(full)


class TestCompiledPlanStructure:
    def test_stage_modes_and_rank_keyed_csr(self):
        case = generate_case(0, 0, DENSE_SPEC)
        matcher = CFLMatch(case.data, engine="kernel")
        plan = matcher.prepare(case.query)
        compiled = plan.kernel
        core = compiled.core
        assert core.length == len(plan.core_slots)
        assert core.modes[0] == MODE_ROOT
        # The root slot's base arrays are the sorted candidate list with
        # identity ranks.
        assert list(core.base_v[0]) == plan.cpi.candidates[plan.root]
        assert list(core.base_r[0]) == list(range(len(core.base_v[0])))
        for depth in range(1, core.length):
            assert core.modes[depth] == MODE_TREE
            slot = plan.core_slots[depth]
            parent = slot.tree_parent
            indptr = core.indptrs[depth]
            flat_v = core.flat_v[depth]
            parent_candidates = plan.cpi.candidates[parent]
            assert len(indptr) == len(parent_candidates) + 1
            # CSR rows keyed by the parent candidate's rank reproduce the
            # dict-of-lists adjacency exactly.
            for rank, parent_image in enumerate(parent_candidates):
                row = list(flat_v[indptr[rank]:indptr[rank + 1]])
                assert row == list(
                    plan.cpi.adjacency[slot.u].get(parent_image, ())
                )
        # Forest slots anchored on core vertices go through cross rows.
        for depth in range(compiled.forest.length):
            assert compiled.forest.modes[depth] in (
                MODE_ROOT, MODE_TREE, MODE_CROSS,
            )

    def test_data_csr_cached_per_matcher(self):
        case = generate_case(0, 0, DENSE_SPEC)
        matcher = CFLMatch(case.data, engine="kernel")
        first = matcher.prepare(case.query).kernel
        matcher.clear_plan_cache()
        second = matcher.prepare(case.query, use_cache=False).kernel
        assert first is not second
        assert first.adj_indptr is second.adj_indptr
        assert first.adj_flat is second.adj_flat

    def test_plan_cache_reuses_compiled_kernel(self):
        case = generate_case(0, 0, DENSE_SPEC)
        matcher = CFLMatch(case.data, engine="kernel")
        first = matcher.prepare(case.query)
        second = matcher.prepare(case.query)
        assert second is first
        assert second.kernel is first.kernel
        assert matcher.prepare_count == 1

    def test_decode_plan_lazily_compiles_for_kernel_matcher(self):
        case = generate_case(0, 0, DENSE_SPEC)
        sender = CFLMatch(case.data, engine="kernel")
        wire = encode_plan(sender.prepare(case.query))
        receiver = CFLMatch(case.data, engine="kernel")
        plan = decode_plan(receiver, case.query, wire)
        assert plan.kernel is not None
        assert receiver.count(case.query, prepared=plan) == sender.count(
            case.query
        )

    def test_compile_without_data_csr_matches(self):
        case = generate_case(0, 0, DENSE_SPEC)
        matcher = CFLMatch(case.data, engine="kernel")
        plan = matcher.prepare(case.query)
        standalone = compile_kernel_plan(
            plan.cpi, plan.core_slots, plan.forest_slots
        )
        assert list(standalone.adj_indptr) == list(plan.kernel.adj_indptr)
        assert list(standalone.core.base_v[0]) == list(plan.kernel.core.base_v[0])


class TestParallelEngineParity:
    def test_parallel_count_each_engine(self):
        case = generate_case(0, 0, DENSE_SPEC)
        expected = CFLMatch(case.data, engine="reference").count(case.query)
        for engine in ENGINES:
            assert (
                parallel_count(case.data, case.query, workers=2, engine=engine)
                == expected
            )


class TestEmptyCandidateSentinel:
    """Regression for the unified empty-candidate sentinel: every "no
    adjacency row" path returns the one shared immutable constant."""

    def test_sentinel_is_shared_and_immutable(self):
        assert EMPTY_CANDIDATES == ()
        assert isinstance(EMPTY_CANDIDATES, tuple)

    def test_cpi_child_candidates_default(self):
        ex = figure3_example()
        plan = CFLMatch(ex.data).prepare(ex.query)
        assert plan.cpi.child_candidates(1, 10_000) is EMPTY_CANDIDATES

    def test_backtracker_slot_candidates_default(self):
        ex = figure3_example()
        plan = CFLMatch(ex.data).prepare(ex.query)
        slot = next(s for s in plan.core_slots if s.tree_parent is not None)
        mapping = [-1] * ex.query.num_vertices
        mapping[slot.tree_parent] = 10_000  # image with no adjacency row
        row = CPIBacktracker._slot_candidates(
            slot, mapping, plan.cpi.candidates, plan.cpi.adjacency
        )
        assert row is EMPTY_CANDIDATES

"""Tests for the shared-plan parallel matching engine."""

import multiprocessing
from collections import Counter

import pytest

from repro.core import CFLMatch, estimate_root_costs
from repro.core.parallel import (
    MatcherPool,
    _chunks,
    _cost_weighted_chunks,
    _dispatch,
    decode_plan,
    encode_plan,
    parallel_count,
    parallel_search,
    parallel_search_iter,
)
from repro.graph import Graph, random_connected_graph
from repro.testing.workloads import CONNECTED_QUERY_SCENARIOS, WorkloadSpec, generate_case
from repro.workloads.paper_graphs import figure1_example

FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not FORK, reason="fork start method unavailable")


class TestChunks:
    def test_round_robin(self):
        assert _chunks([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_more_pieces_than_items(self):
        assert _chunks([1, 2], 5) == [[1], [2]]

    def test_single_piece(self):
        assert _chunks([1, 2, 3], 1) == [[1, 2, 3]]


class TestCostWeightedChunks:
    def test_partitions_all_roots(self):
        roots = list(range(10))
        costs = {v: v * v for v in roots}
        buckets = _cost_weighted_chunks(roots, costs, 3)
        flattened = sorted(v for bucket in buckets for v in bucket)
        assert flattened == roots
        assert len(buckets) == 3

    def test_isolates_the_heavy_root(self):
        """One dominant root must not share its bucket under LPT."""
        roots = list(range(9))
        costs = {0: 1000}
        buckets = _cost_weighted_chunks(roots, costs, 4)
        heavy = [bucket for bucket in buckets if 0 in bucket]
        assert heavy == [[0]]
        # heaviest bucket is dispatched first
        assert buckets[0] == [0]

    def test_balances_uniform_weights(self):
        buckets = _cost_weighted_chunks(list(range(12)), {}, 4)
        assert sorted(len(b) for b in buckets) == [3, 3, 3, 3]

    def test_deterministic(self):
        roots = list(range(20))
        costs = {v: (v * 7) % 5 for v in roots}
        assert _cost_weighted_chunks(roots, costs, 6) == _cost_weighted_chunks(
            roots, costs, 6
        )

    def test_estimate_root_costs_matches_tree_estimate(self):
        from repro.core.ordering import estimate_tree_embeddings

        ex = figure1_example(10, 10)
        matcher = CFLMatch(ex.data)
        plan = matcher.prepare(ex.query)
        costs = estimate_root_costs(plan.cpi)
        assert set(costs) <= set(plan.cpi.candidates[plan.cpi.root])
        allowed = set(ex.query.vertices())
        assert sum(costs.values()) == estimate_tree_embeddings(
            plan.cpi, plan.cpi.root, allowed
        )


class _FakePool:
    """Synchronous stand-in for multiprocessing.Pool.apply_async."""

    def __init__(self, task):
        self.task = task
        self.submitted = []

    def apply_async(self, func, args, callback, error_callback):
        self.submitted.append(args[0])
        try:
            callback(self.task(args[0]))
        except Exception as exc:  # pragma: no cover - error-path test only
            error_callback(exc)


class TestDispatcher:
    """The wave scheduler must shrink budgets and stop early."""

    def test_budgets_shrink_per_dispatched_chunk(self):
        chunks = [[1, 2, 3], [4, 5], [6], [7], [8]]
        # each chunk "finds" 4 embeddings (capped by its budget)
        task = lambda args: min(4, args[1])
        pool = _FakePool(task)
        cancel = multiprocessing.get_context("spawn").Event()
        results = list(
            _dispatch(
                pool, task, lambda c, b: (c, b), chunks,
                limit=10, cancel=cancel, measure=lambda v: v, max_inflight=1,
            )
        )
        budgets = [budget for _, budget in pool.submitted]
        assert budgets == [10, 6, 2]       # shrinking remaining budget
        assert results == [4, 4, 2]
        assert cancel.is_set()             # global limit reached -> cancel
        assert len(pool.submitted) == 3    # backlog chunks never dispatched

    def test_no_limit_submits_everything(self):
        chunks = [[1], [2], [3]]
        task = lambda args: 1
        pool = _FakePool(task)
        cancel = multiprocessing.get_context("spawn").Event()
        total = sum(
            _dispatch(
                pool, task, lambda c, b: (c, b), chunks,
                limit=None, cancel=cancel, measure=lambda v: v,
                max_inflight=len(chunks),
            )
        )
        assert total == 3
        assert [budget for _, budget in pool.submitted] == [None, None, None]
        assert not cancel.is_set()

    def test_error_sets_cancel_and_raises(self):
        def task(args):
            raise RuntimeError("worker exploded")

        pool = _FakePool(task)
        cancel = multiprocessing.get_context("spawn").Event()
        with pytest.raises(RuntimeError, match="worker exploded"):
            list(
                _dispatch(
                    pool, task, lambda c, b: (c, b), [[1]],
                    limit=None, cancel=cancel, measure=lambda v: v, max_inflight=1,
                )
            )
        assert cancel.is_set()


class TestRootRestriction:
    """The partitioning hook on CFLMatch itself."""

    def test_restrictions_partition_results(self, rng):
        for _ in range(10):
            data = random_connected_graph(rng.randrange(8, 20), rng.randrange(0, 15), 3, rng)
            query = random_connected_graph(rng.randrange(2, 6), rng.randrange(0, 3), 2, rng)
            matcher = CFLMatch(data)
            prepared = matcher.prepare(query)
            roots = list(prepared.cpi.candidates[prepared.root])
            full = set(matcher.search(query))
            pieces = [
                set(matcher.search(query, root_candidates=chunk))
                for chunk in _chunks(roots, 3)
            ]
            combined = set().union(*pieces) if pieces else set()
            assert combined == full
            # disjointness
            assert sum(len(p) for p in pieces) == len(full)

    def test_empty_restriction(self):
        data = Graph([0, 1], [(0, 1)])
        query = Graph([0, 1], [(0, 1)])
        matcher = CFLMatch(data)
        assert list(matcher.search(query, root_candidates=[])) == []
        assert matcher.count(query, root_candidates=[999]) == 0

    def test_count_restriction(self):
        ex = figure1_example(10, 10)
        matcher = CFLMatch(ex.data)
        prepared = matcher.prepare(ex.query)
        roots = prepared.cpi.candidates[prepared.root]
        total = sum(
            matcher.count(ex.query, root_candidates=[v]) for v in roots
        )
        assert total == 10

    def test_restriction_shares_structure(self):
        """with_root_candidates must not copy non-root candidate sets."""
        ex = figure1_example(10, 10)
        matcher = CFLMatch(ex.data)
        plan = matcher.prepare(ex.query)
        roots = plan.cpi.candidates[plan.root]
        restricted = plan.cpi.with_root_candidates(roots[:1])
        assert restricted.adjacency is plan.cpi.adjacency
        for u in ex.query.vertices():
            if u == plan.root:
                continue
            assert restricted.candidates[u] is plan.cpi.candidates[u]
            assert restricted.cand_sets[u] is plan.cpi.cand_sets[u]
        assert restricted.candidates[plan.root] == sorted(roots[:1])


class TestParallel:
    def test_parallel_count_matches_sequential(self):
        ex = figure1_example(20, 30)
        sequential = CFLMatch(ex.data).count(ex.query)
        assert parallel_count(ex.data, ex.query, workers=2) == sequential

    def test_parallel_search_matches_sequential(self, rng):
        data = random_connected_graph(20, 15, 2, rng)
        query = random_connected_graph(4, 1, 2, rng)
        sequential = set(CFLMatch(data).search(query))
        parallel = set(parallel_search(data, query, workers=2))
        assert parallel == sequential

    def test_workers_one_falls_back_inline(self):
        ex = figure1_example(5, 5)
        assert parallel_count(ex.data, ex.query, workers=1) == 5

    def test_single_candidate_root_falls_back_inline(self):
        ex = figure1_example(1, 3)
        matcher = CFLMatch(ex.data)
        plan = matcher.prepare(ex.query)
        expected = matcher.count(ex.query)
        if len(plan.cpi.candidates[plan.root]) == 1:
            assert parallel_count(ex.data, ex.query, workers=4) == expected
        assert parallel_count(ex.data, ex.query, workers=4) == expected

    def test_limit_saturates(self):
        ex = figure1_example(30, 30)
        assert parallel_count(ex.data, ex.query, workers=2, limit=7) == 7
        assert len(parallel_search(ex.data, ex.query, workers=2, limit=7)) == 7

    def test_limit_zero_and_one(self):
        ex = figure1_example(10, 10)
        assert parallel_count(ex.data, ex.query, workers=2, limit=0) == 0
        assert parallel_search(ex.data, ex.query, workers=2, limit=0) == []
        assert parallel_count(ex.data, ex.query, workers=2, limit=1) == 1
        assert len(parallel_search(ex.data, ex.query, workers=2, limit=1)) == 1

    def test_no_candidates(self):
        data = Graph([0], [])
        query = Graph([9], [])
        assert parallel_count(data, query, workers=2) == 0
        assert parallel_search(data, query, workers=2) == []

    def test_matcher_kwargs_forwarded(self):
        ex = figure1_example(8, 8)
        count = parallel_count(ex.data, ex.query, workers=2, cpi_mode="td")
        assert count == 8

    def test_streaming_iterator_respects_limit(self):
        ex = figure1_example(30, 30)
        stream = parallel_search_iter(ex.data, ex.query, workers=2, limit=5)
        first = next(stream)
        assert isinstance(first, tuple)
        rest = list(stream)
        assert len(rest) == 4

    def test_spawn_context_matches_fork(self):
        """The CompiledCPI wire path must agree with the COW fork path."""
        ex = figure1_example(12, 12)
        expected = CFLMatch(ex.data).count(ex.query)
        assert (
            parallel_count(ex.data, ex.query, workers=2, start_method="spawn")
            == expected
        )
        assert Counter(
            parallel_search(ex.data, ex.query, workers=2, start_method="spawn")
        ) == Counter(CFLMatch(ex.data).search(ex.query))


class TestPrepareOnce:
    """The tentpole invariant: one prepare() per query across the whole
    parallel execution, asserted by a fork-shared counter."""

    @needs_fork
    def test_prepare_runs_exactly_once_across_workers(self, monkeypatch):
        ex = figure1_example(20, 20)
        ctx = multiprocessing.get_context("fork")
        counter = ctx.Value("i", 0)
        original = CFLMatch._prepare_fresh

        def counted(self, query):
            with counter.get_lock():
                counter.value += 1
            return original(self, query)

        monkeypatch.setattr(CFLMatch, "_prepare_fresh", counted)
        assert (
            parallel_count(ex.data, ex.query, workers=2, start_method="fork") == 20
        )
        assert counter.value == 1

    @needs_fork
    def test_sequential_fallback_prepares_once(self, monkeypatch):
        """workers=1 used to prepare twice (root scan + count)."""
        ex = figure1_example(6, 6)
        ctx = multiprocessing.get_context("fork")
        counter = ctx.Value("i", 0)
        original = CFLMatch._prepare_fresh

        def counted(self, query):
            with counter.get_lock():
                counter.value += 1
            return original(self, query)

        monkeypatch.setattr(CFLMatch, "_prepare_fresh", counted)
        assert parallel_count(ex.data, ex.query, workers=1) == 6
        assert counter.value == 1

    @needs_fork
    def test_search_prepares_exactly_once_across_workers(self, monkeypatch):
        ex = figure1_example(10, 10)
        ctx = multiprocessing.get_context("fork")
        counter = ctx.Value("i", 0)
        original = CFLMatch._prepare_fresh

        def counted(self, query):
            with counter.get_lock():
                counter.value += 1
            return original(self, query)

        monkeypatch.setattr(CFLMatch, "_prepare_fresh", counted)
        assert len(parallel_search(ex.data, ex.query, workers=2, start_method="fork")) == 10
        assert counter.value == 1


class TestPlanWire:
    """encode_plan/decode_plan: the spawn-context plan shipping path."""

    def test_round_trip_reproduces_results(self):
        spec = WorkloadSpec(scenarios=("dense", "nec-heavy", "twins"))
        for index in range(6):
            case = generate_case(9000, index, spec)
            matcher = CFLMatch(case.data)
            plan = matcher.prepare(case.query)
            rebuilt = decode_plan(matcher, case.query, encode_plan(plan))
            assert rebuilt.root == plan.root
            assert rebuilt.core_order == plan.core_order
            assert rebuilt.forest_order == plan.forest_order
            assert Counter(
                matcher.search(case.query, prepared=rebuilt)
            ) == Counter(matcher.search(case.query, prepared=plan))

    def test_decode_skips_cpi_build(self, monkeypatch):
        ex = figure1_example(8, 8)
        matcher = CFLMatch(ex.data)
        plan = matcher.prepare(ex.query)
        wire = encode_plan(plan)

        def boom(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("CPI build must not run on decode")

        monkeypatch.setattr(CFLMatch, "_build_cpi", boom)
        rebuilt = decode_plan(matcher, ex.query, wire)
        assert matcher.count(ex.query, prepared=rebuilt) == 8


class TestMatcherPool:
    def test_serves_multiple_queries_without_reforking(self):
        ex = figure1_example(15, 15)
        other = figure1_example(4, 9)
        with MatcherPool(ex.data, workers=2) as pool:
            assert pool.count(ex.query) == 15
            assert pool.count(other.query) == CFLMatch(ex.data).count(other.query)
            assert Counter(pool.search(ex.query)) == Counter(
                CFLMatch(ex.data).search(ex.query)
            )

    def test_repeated_query_hits_plan_cache(self):
        ex = figure1_example(12, 12)
        with MatcherPool(ex.data, workers=2) as pool:
            for _ in range(3):
                assert pool.count(ex.query) == 12
            assert pool.matcher.prepare_count == 1
            assert pool.matcher.plan_cache_hits == 2

    def test_search_iter_streams_with_limit(self):
        ex = figure1_example(25, 25)
        with MatcherPool(ex.data, workers=2) as pool:
            got = list(pool.search_iter(ex.query, limit=6))
            assert len(got) == 6
            # the pool is immediately reusable after an early stop
            assert pool.count(ex.query) == 25

    def test_limit_edge_cases(self):
        ex = figure1_example(9, 9)
        with MatcherPool(ex.data, workers=2) as pool:
            assert pool.count(ex.query, limit=0) == 0
            assert pool.search(ex.query, limit=0) == []
            assert pool.count(ex.query, limit=1) == 1
            assert len(pool.search(ex.query, limit=1)) == 1

    def test_empty_result_query(self):
        ex = figure1_example(5, 5)
        missing = Graph([max(ex.data.labels) + 7], [])
        with MatcherPool(ex.data, workers=2) as pool:
            assert pool.count(missing) == 0
            assert pool.search(missing) == []

    def test_spawn_pool(self):
        ex = figure1_example(8, 8)
        with MatcherPool(ex.data, workers=2, start_method="spawn") as pool:
            assert pool.count(ex.query) == 8
            assert pool.count(ex.query) == 8  # worker-side plan LRU hit

    def test_closed_pool_rejects_queries(self):
        ex = figure1_example(3, 3)
        pool = MatcherPool(ex.data, workers=2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.count(ex.query)

    def test_workers_one_runs_inline(self):
        ex = figure1_example(7, 7)
        with MatcherPool(ex.data, workers=1) as pool:
            assert pool.count(ex.query) == 7


class TestPlanCache:
    """The CFLMatch LRU plan cache the pools and serving paths lean on."""

    def test_hit_and_counterattribution(self):
        ex = figure1_example(6, 6)
        matcher = CFLMatch(ex.data)
        assert matcher.count(ex.query) == 6
        assert matcher.count(ex.query) == 6
        assert list(matcher.search(ex.query))
        assert matcher.prepare_count == 1
        assert matcher.plan_cache_hits == 2

    def test_distinct_queries_miss(self):
        ex = figure1_example(6, 6)
        matcher = CFLMatch(ex.data)
        matcher.count(ex.query)
        shifted = Graph(
            [lab + 1 for lab in ex.query.labels], list(ex.query.edges())
        )
        matcher.count(shifted)
        assert matcher.prepare_count == 2

    def test_lru_eviction(self):
        ex = figure1_example(6, 6)
        matcher = CFLMatch(ex.data, plan_cache_size=1)
        other = Graph([lab + 1 for lab in ex.query.labels], list(ex.query.edges()))
        matcher.count(ex.query)
        matcher.count(other)      # evicts ex.query's plan
        matcher.count(ex.query)   # must re-prepare
        assert matcher.prepare_count == 3
        assert matcher.plan_cache_hits == 0

    def test_cache_disabled(self):
        ex = figure1_example(6, 6)
        matcher = CFLMatch(ex.data, plan_cache_size=0)
        matcher.count(ex.query)
        matcher.count(ex.query)
        assert matcher.prepare_count == 2
        assert matcher.plan_cache_hits == 0

    def test_clear_plan_cache(self):
        ex = figure1_example(6, 6)
        matcher = CFLMatch(ex.data)
        matcher.count(ex.query)
        matcher.clear_plan_cache()
        matcher.count(ex.query)
        assert matcher.prepare_count == 2

    def test_run_bypasses_cache_for_honest_timing(self):
        ex = figure1_example(6, 6)
        matcher = CFLMatch(ex.data)
        matcher.count(ex.query)
        report = matcher.run(ex.query)
        assert report.embeddings == 6
        assert matcher.prepare_count == 2

    def test_cached_plan_not_corrupted_by_restrictions(self):
        """Root-restricted searches must not mutate the cached plan."""
        ex = figure1_example(10, 10)
        matcher = CFLMatch(ex.data)
        plan = matcher.prepare(ex.query)
        roots = list(plan.cpi.candidates[plan.root])
        matcher.count(ex.query, root_candidates=roots[:1])
        assert matcher.count(ex.query) == 10
        assert plan.cpi.candidates[plan.root] == roots


class TestParallelDifferential:
    """Differential coverage: the parallel matcher must return the exact
    sequential embedding multiset on a broad seeded workload sweep."""

    def test_matches_sequential_on_fuzz_workloads(self):
        spec = WorkloadSpec(scenarios=CONNECTED_QUERY_SCENARIOS)
        checked = 0
        scenarios_seen = set()
        empties = 0
        index = 0
        while checked < 20:
            case = generate_case(8128, index, spec)
            index += 1
            sequential = Counter(CFLMatch(case.data).search(case.query))
            parallel = Counter(
                parallel_search(case.data, case.query, workers=2)
            )
            assert parallel == sequential, case.describe()
            assert parallel_count(case.data, case.query, workers=2) == sum(
                sequential.values()
            ), case.describe()
            checked += 1
            scenarios_seen.add(case.scenario)
            if not sequential:
                empties += 1
        # The sweep must include the tricky regimes, not just easy cases.
        assert "nec-heavy" in scenarios_seen
        assert "empty-result" in scenarios_seen
        assert empties >= 1

    def test_pool_matches_sequential_on_fuzz_workloads(self):
        """One persistent pool across a stream of distinct queries."""
        spec = WorkloadSpec(scenarios=("dense", "nec-heavy", "twins", "uniform"))
        cases = [generate_case(4242, index, spec) for index in range(4)]
        for case in cases:
            with MatcherPool(case.data, workers=2) as pool:
                sequential = Counter(CFLMatch(case.data).search(case.query))
                assert Counter(pool.search(case.query)) == sequential, case.describe()
                assert pool.count(case.query) == sum(sequential.values())

"""Tests for parallel matching over root-candidate partitions."""

import random

import pytest

from repro.core import CFLMatch
from repro.core.parallel import _chunks, parallel_count, parallel_search
from repro.graph import Graph, random_connected_graph
from repro.testing.workloads import CONNECTED_QUERY_SCENARIOS, WorkloadSpec, generate_case
from repro.workloads.paper_graphs import figure1_example


class TestChunks:
    def test_round_robin(self):
        assert _chunks([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]

    def test_more_pieces_than_items(self):
        assert _chunks([1, 2], 5) == [[1], [2]]

    def test_single_piece(self):
        assert _chunks([1, 2, 3], 1) == [[1, 2, 3]]


class TestRootRestriction:
    """The partitioning hook on CFLMatch itself."""

    def test_restrictions_partition_results(self, rng):
        for _ in range(10):
            data = random_connected_graph(rng.randrange(8, 20), rng.randrange(0, 15), 3, rng)
            query = random_connected_graph(rng.randrange(2, 6), rng.randrange(0, 3), 2, rng)
            matcher = CFLMatch(data)
            prepared = matcher.prepare(query)
            roots = list(prepared.cpi.candidates[prepared.root])
            full = set(matcher.search(query))
            pieces = [
                set(matcher.search(query, root_candidates=chunk))
                for chunk in _chunks(roots, 3)
            ]
            combined = set().union(*pieces) if pieces else set()
            assert combined == full
            # disjointness
            assert sum(len(p) for p in pieces) == len(full)

    def test_empty_restriction(self):
        data = Graph([0, 1], [(0, 1)])
        query = Graph([0, 1], [(0, 1)])
        matcher = CFLMatch(data)
        assert list(matcher.search(query, root_candidates=[])) == []
        assert matcher.count(query, root_candidates=[999]) == 0

    def test_count_restriction(self):
        ex = figure1_example(10, 10)
        matcher = CFLMatch(ex.data)
        prepared = matcher.prepare(ex.query)
        roots = prepared.cpi.candidates[prepared.root]
        total = sum(
            matcher.count(ex.query, root_candidates=[v]) for v in roots
        )
        assert total == 10


class TestParallel:
    def test_parallel_count_matches_sequential(self):
        ex = figure1_example(20, 30)
        sequential = CFLMatch(ex.data).count(ex.query)
        assert parallel_count(ex.data, ex.query, workers=2) == sequential

    def test_parallel_search_matches_sequential(self, rng):
        data = random_connected_graph(20, 15, 2, rng)
        query = random_connected_graph(4, 1, 2, rng)
        sequential = set(CFLMatch(data).search(query))
        parallel = set(parallel_search(data, query, workers=2))
        assert parallel == sequential

    def test_workers_one_falls_back_inline(self):
        ex = figure1_example(5, 5)
        assert parallel_count(ex.data, ex.query, workers=1) == 5

    def test_limit_saturates(self):
        ex = figure1_example(30, 30)
        assert parallel_count(ex.data, ex.query, workers=2, limit=7) == 7
        assert len(parallel_search(ex.data, ex.query, workers=2, limit=7)) == 7

    def test_no_candidates(self):
        data = Graph([0], [])
        query = Graph([9], [])
        assert parallel_count(data, query, workers=2) == 0
        assert parallel_search(data, query, workers=2) == []

    def test_matcher_kwargs_forwarded(self):
        ex = figure1_example(8, 8)
        count = parallel_count(ex.data, ex.query, workers=2, cpi_mode="td")
        assert count == 8


class TestParallelDifferential:
    """Differential coverage: the parallel matcher must return the exact
    sequential embedding set on a broad seeded workload sweep."""

    def test_matches_sequential_on_fuzz_workloads(self):
        spec = WorkloadSpec(scenarios=CONNECTED_QUERY_SCENARIOS)
        checked = 0
        scenarios_seen = set()
        empties = 0
        index = 0
        while checked < 20:
            case = generate_case(8128, index, spec)
            index += 1
            sequential = set(CFLMatch(case.data).search(case.query))
            parallel = set(
                parallel_search(case.data, case.query, workers=2)
            )
            assert parallel == sequential, case.describe()
            assert parallel_count(case.data, case.query, workers=2) == len(
                sequential
            ), case.describe()
            checked += 1
            scenarios_seen.add(case.scenario)
            if not sequential:
                empties += 1
        # The sweep must include the tricky regimes, not just easy cases.
        assert "nec-heavy" in scenarios_seen
        assert "empty-result" in scenarios_seen
        assert empties >= 1

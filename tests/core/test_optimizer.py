"""Tests for the round-2 optimizer: label-pair/NLI filters, CEMR, and
adaptive mid-search re-planning.

Every feature must be invisible to correctness (same embeddings, same
CPI where promised, counters bit-identical except the documented
exemptions) and observable through its own counters.
"""

import json
import random

import pytest

from repro.core import CFLMatch, SearchStats
from repro.core.dynamic import IncrementalMatcher
from repro.core.explain import stage_breadth
from repro.core.filters import ExtendedCandVerify, cand_verify
from repro.core.parallel import parallel_count, parallel_search
from repro.core.profile import profile_query, validate_profile
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import random_walk_query, synthetic_graph
from repro.workloads.paper_graphs import figure1_example, figure3_example

#: Counters the optimizer features are allowed to change.
MEMO_ONLY = {"cemr_memo_hits"}
FILTER_SPLIT = {
    "filter_label_pair_pruned",
    "filter_nli_pruned",
    "filter_mnd_pruned",
    "filter_nlf_pruned",
}

AGGRESSIVE_ADAPTIVE = {"adaptive": True, "adaptive_ratio": 0.01, "adaptive_min_nodes": 0}


def _instances(trials=8, seed=500):
    rng = random.Random(seed)
    for trial in range(trials):
        data = synthetic_graph(70, 4.0, 4, seed=seed + trial)
        query = random_walk_query(data, 5, rng, keep_edge_probability=0.6)
        yield data, query


def _counters_equal_except(base, other, exempt):
    diffs = {
        name: (base[name], other[name])
        for name in base
        if name not in exempt and base[name] != other[name]
    }
    assert not diffs, f"unexpected counter drift: {diffs}"


class TestLabelPairNliFilters:
    def test_cpi_identical_with_filters_on(self):
        """The new filters prune only candidates NLF would reject, so
        the *built* CPI is bit-identical with them on or off."""
        for data, query in _instances():
            plain = CFLMatch(data).prepare(query, use_cache=False)
            filtered = CFLMatch(
                data, label_pair_filter=True, nli_filter=True
            ).prepare(query, use_cache=False)
            assert plain.cpi.candidates == filtered.cpi.candidates
            assert plain.cpi.adjacency == filtered.cpi.adjacency
            assert plain.matching_order == filtered.matching_order

    def test_rejection_total_conserved(self):
        """Filters re-attribute rejections (label-pair/NLI fire before
        MND/NLF) without changing the total number of rejections."""
        saw_early = 0
        for data, query in _instances():
            base, on = SearchStats(), SearchStats()
            CFLMatch(data).prepare(query, use_cache=False, build_stats=base)
            CFLMatch(
                data, label_pair_filter=True, nli_filter=True
            ).prepare(query, use_cache=False, build_stats=on)
            base_d, on_d = base.to_dict(), on.to_dict()
            assert sum(base_d[n] for n in FILTER_SPLIT) == sum(
                on_d[n] for n in FILTER_SPLIT
            )
            _counters_equal_except(base_d, on_d, MEMO_ONLY | FILTER_SPLIT)
            saw_early += on_d["filter_label_pair_pruned"] + on_d["filter_nli_pruned"]
        assert saw_early > 0, "expected the new filters to fire somewhere"

    def test_extended_verify_subset_of_cand_verify(self):
        """ExtendedCandVerify never accepts a pair cand_verify rejects."""
        for data, query in _instances(trials=4, seed=900):
            verify = ExtendedCandVerify(query, data)
            for u in query.vertices():
                for v in data.vertices():
                    if verify(query, data, u, v):
                        assert cand_verify(query, data, u, v)

    def test_embeddings_unchanged(self):
        for data, query in _instances(trials=4):
            plain = set(CFLMatch(data).search(query))
            filtered = set(
                CFLMatch(data, label_pair_filter=True, nli_filter=True).search(query)
            )
            assert plain == filtered


class TestCemr:
    @staticmethod
    def _cyclic_instances(trials=6, seed=700):
        # Denser graphs + cyclic queries (all walk edges kept) so slots
        # carry backward edges — the precondition for CEMR memoization.
        rng = random.Random(1)
        for trial in range(trials):
            data = synthetic_graph(120, 8.0, 3, seed=seed + trial)
            yield data, random_walk_query(data, 7, rng, keep_edge_probability=1.0)

    @pytest.mark.parametrize("engine", ["kernel", "reference"])
    def test_bit_identical_except_memo_hits(self, engine):
        hits = 0
        for data, query in self._cyclic_instances():
            base, memo = SearchStats(), SearchStats()
            n0 = CFLMatch(data, engine=engine).count(query, stats=base)
            n1 = CFLMatch(data, engine=engine, cemr=True).count(query, stats=memo)
            assert n0 == n1
            _counters_equal_except(base.to_dict(), memo.to_dict(), MEMO_ONLY)
            hits += memo.cemr_memo_hits
        assert hits > 0, f"CEMR never fired on the {engine} engine"

    def test_embedding_sets_match(self):
        for data, query in _instances(trials=4, seed=77):
            plain = set(CFLMatch(data).search(query))
            for engine in ("kernel", "reference"):
                assert set(CFLMatch(data, engine=engine, cemr=True).search(query)) == plain


class TestAdaptive:
    @pytest.mark.parametrize("engine", ["kernel", "reference"])
    def test_sequential_equivalence(self, engine):
        replans = 0
        for data, query in _instances(trials=8, seed=808):
            plain = set(CFLMatch(data).search(query))
            stats = SearchStats()
            adaptive = set(
                CFLMatch(data, engine=engine, **AGGRESSIVE_ADAPTIVE).search(
                    query, stats=stats
                )
            )
            assert adaptive == plain
            replans += stats.adaptive_replans
        assert replans > 0, "aggressive trigger never re-planned"

    def test_untriggered_run_is_counter_identical(self):
        """With an impossible trigger the adaptive path is a pure
        pass-through: every counter matches the plain run."""
        for data, query in _instances(trials=4, seed=33):
            base, adapt = SearchStats(), SearchStats()
            n0 = CFLMatch(data).count(query, stats=base)
            n1 = CFLMatch(
                data, adaptive=True, adaptive_ratio=1e9, adaptive_min_nodes=10**9
            ).count(query, stats=adapt)
            assert n0 == n1
            assert adapt.adaptive_replans == 0
            _counters_equal_except(base.to_dict(), adapt.to_dict(), set())

    @pytest.mark.parametrize("engine", ["kernel", "reference"])
    def test_workers4_count_and_search(self, engine):
        data = synthetic_graph(80, 4.0, 4, seed=42)
        rng = random.Random(42)
        query = random_walk_query(data, 5, rng, keep_edge_probability=0.6)
        plain = set(CFLMatch(data).search(query))
        assert parallel_count(
            data, query, workers=4, engine=engine, **AGGRESSIVE_ADAPTIVE
        ) == len(plain)
        assert set(
            parallel_search(
                data, query, workers=4, engine=engine, **AGGRESSIVE_ADAPTIVE
            )
        ) == plain

    def test_knob_validation(self):
        data = figure3_example().data
        with pytest.raises(ValueError):
            CFLMatch(data, adaptive_ratio=0.0)
        with pytest.raises(ValueError):
            CFLMatch(data, adaptive_ratio=-1.0)
        with pytest.raises(ValueError):
            CFLMatch(data, adaptive_min_nodes=-1)


class TestAllFeaturesTogether:
    def test_full_stack_matches_plain(self):
        for data, query in _instances(trials=6, seed=4242):
            plain = set(CFLMatch(data).search(query))
            optimized = set(
                CFLMatch(
                    data, label_pair_filter=True, nli_filter=True, cemr=True,
                    **AGGRESSIVE_ADAPTIVE,
                ).search(query)
            )
            assert optimized == plain


class TestDynamicWithFilters:
    def test_incremental_matcher_forwards_kwargs(self):
        base = synthetic_graph(60, 4.0, 4, seed=5)
        rng = random.Random(5)
        query = random_walk_query(base, 4, rng, keep_edge_probability=0.7)
        dyn = DynamicGraph.from_graph(base)
        inc = IncrementalMatcher(dyn, label_pair_filter=True, nli_filter=True, cemr=True)
        assert inc.count(query) == CFLMatch(base).count(query)
        # Mutate, then verify incremental repair under the filters still
        # matches a cold matcher on the final graph.
        edges = [(a, b) for a, b in base.edges()]
        removed = edges[: min(3, len(edges))]
        for a, b in removed:
            dyn.remove_edge(a, b)
        for a, b in removed[:1]:
            dyn.add_edge(a, b)
        cold = CFLMatch(dyn.to_static()).count(query)
        assert inc.count(query) == cold


class TestStageBreadthTruncation:
    def _truncated_report(self):
        ex = figure1_example(12, 60)
        matcher = CFLMatch(ex.data)
        prepared = matcher.prepare(ex.query)
        report = matcher.run(
            ex.query, prepared=prepared, count_only=True, max_expansions=2
        )
        return matcher, prepared, report

    def test_truncated_rows_flagged(self):
        _, prepared, report = self._truncated_report()
        assert report.status == "budget_exhausted"
        rows = stage_breadth(prepared, report)
        assert rows and all(row["truncated"] is True for row in rows)
        # Partial actuals stay coherent: never more work than the run did.
        assert sum(row["actual_expansions"] for row in rows) <= max(
            report.stats.nodes, 1
        ) + len(rows)

    def test_ok_rows_not_flagged(self):
        ex = figure3_example()
        matcher = CFLMatch(ex.data)
        prepared = matcher.prepare(ex.query)
        report = matcher.run(ex.query, prepared=prepared, count_only=True)
        assert report.status == "ok"
        for row in stage_breadth(prepared, report):
            assert "truncated" not in row

    def test_truncated_profile_validates(self):
        ex = figure1_example(12, 60)
        payload = profile_query(ex.data, ex.query, max_expansions=2)
        assert payload["status"] == "budget_exhausted"
        assert validate_profile(payload) == []
        assert any(row.get("truncated") for row in payload["stages"])

    def test_adaptive_profile_validates(self):
        ex = figure3_example()
        payload = profile_query(ex.data, ex.query, **AGGRESSIVE_ADAPTIVE)
        assert validate_profile(payload) == []
        assert "adaptive_replans" in payload["counters"]


class TestExplainCli:
    def _write_pair(self, tmp_path):
        from repro.graph import save_graph

        ex = figure3_example()
        data_path = tmp_path / "data.graph"
        query_path = tmp_path / "query.graph"
        save_graph(ex.data, data_path)
        save_graph(ex.query, query_path)
        return data_path, query_path

    def test_json_execute(self, tmp_path, capsys):
        from repro.cli import main

        data_path, query_path = self._write_pair(tmp_path)
        code = main(
            [
                "explain", "--data", str(data_path), "--query", str(query_path),
                "--execute", "--json", "--adaptive",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert {"estimated_embeddings", "matching_order", "root", "stages"} <= set(
            payload
        )
        assert payload["adaptive_replans"] >= 0
        for row in payload["stages"]:
            assert {"stage", "vertices", "estimated_breadth", "actual_expansions"} <= set(row)

    def test_text_breadth_table(self, tmp_path, capsys):
        from repro.cli import main

        data_path, query_path = self._write_pair(tmp_path)
        code = main(
            ["explain", "--data", str(data_path), "--query", str(query_path), "--execute"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated" in out and "actual" in out

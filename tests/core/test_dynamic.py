"""Dynamic-matching suite: incremental repair must be invisible.

The contract under test (see ``repro/core/dynamic.py``):

* after any valid delta stream, an :class:`IncrementalMatcher` returns
  bit-identical embeddings, enumeration order, full enumeration
  ``SearchStats`` and CPI payload to a cold matcher prepared from
  scratch on the mutated graph — on every fuzz scenario, for both the
  reference and kernel engines;
* the repair/rebuild decision (threshold, label-disjoint no-op,
  renumbering, mutation-log gap) changes only the ``cpi_repairs`` /
  ``cpi_rebuilds`` / ``dirty_region_size`` accounting, never results;
* the initial (traced) build produces exactly the same build counters
  as the production CPI builder;
* :class:`ContinuousQuery` reports exact created/tombstone streams.
"""

import random

import pytest

from repro.core.dynamic import (
    ContinuousQuery,
    IncrementalMatcher,
    dirty_region,
)
from repro.core.matcher import CFLMatch
from repro.core.stats import SearchStats
from repro.graph.dynamic import Delta, DynamicGraph
from repro.graph.graph import Graph, GraphError
from repro.testing.dynamic import (
    DYNAMIC_ENGINES,
    generate_delta_case,
    incremental_differential_check,
)
from repro.testing.workloads import (
    DYNAMIC_BASE_SCENARIOS,
    WorkloadSpec,
    generate_case,
    generate_delta_stream,
)


def small_instance():
    """A hand-checkable instance: query = one (label 0)-(label 1) edge.

    Data has exactly two matching edges — embeddings (0, 2) and (1, 3) —
    plus a (label 2)-(label 2) edge entirely outside the query's labels.
    """
    data = DynamicGraph([0, 0, 1, 1, 2, 2], [(0, 2), (1, 3), (4, 5)])
    query = Graph([0, 1], [(0, 1)])
    return data, query


def embeddings_of(matcher, query):
    return list(matcher.search(query))


# ----------------------------------------------------------------------
# Differential: incremental repair vs cold re-prepare
# ----------------------------------------------------------------------
class TestIncrementalDifferential:
    @pytest.mark.parametrize("scenario", DYNAMIC_BASE_SCENARIOS)
    @pytest.mark.parametrize("index", [0, 1])
    def test_scenarios_match_recompute(self, scenario, index):
        """Embeddings, order, stats and CPI agree at every stream step,
        for both engines (``incremental_differential_check`` compares
        all four after each delta)."""
        case = generate_delta_case(
            101, index, spec=WorkloadSpec(scenarios=(scenario,))
        )
        assert case.scenario == scenario
        mismatches = incremental_differential_check(
            case.data, case.query, case.deltas
        )
        assert mismatches == [], [m.detail for m in mismatches]

    @pytest.mark.parametrize("engine", DYNAMIC_ENGINES)
    @pytest.mark.parametrize("threshold", [0.0, 0.4, 1.0])
    def test_thresholds_do_not_change_results(self, engine, threshold):
        """Any repair/rebuild mix is result-invisible."""
        case = generate_delta_case(77, 3)
        mismatches = incremental_differential_check(
            case.data, case.query, case.deltas,
            engines=(engine,), rebuild_threshold=threshold,
        )
        assert mismatches == [], [m.detail for m in mismatches]

    def test_stats_equality_is_full_dict(self):
        """The differential compares the *complete* counter dict: a
        sequential incremental enumeration reproduces every counter of a
        cold prepare-and-enumerate, not just the embedding count."""
        case = generate_delta_case(13, 2)
        dynamic = DynamicGraph.from_graph(case.data)
        inc = IncrementalMatcher(dynamic, engine="reference")
        for delta in case.deltas:
            dynamic.apply(delta)
        inc_stats = SearchStats()
        got = list(inc.search(case.query, stats=inc_stats))
        cold = CFLMatch(dynamic.to_static(), engine="reference")
        cold_stats = SearchStats()
        want = list(cold.search(case.query, stats=cold_stats))
        assert got == want
        assert inc_stats.to_dict() == cold_stats.to_dict()

    def test_workers_match_sequential_on_mutated_graph(self):
        """A mutated DynamicGraph feeds the parallel path unchanged."""
        from repro.core.parallel import parallel_search_iter

        case = generate_case(
            5, 0, WorkloadSpec(scenarios=("dense",),
                               data_vertices=(30, 30), query_vertices=(5, 5))
        )
        dynamic = DynamicGraph.from_graph(case.data)
        inc = IncrementalMatcher(dynamic)
        rng = random.Random(99)
        for delta in generate_delta_stream(case.data, rng, length=6):
            dynamic.apply(delta)
        sequential = sorted(inc.search(case.query))
        parallel = sorted(
            parallel_search_iter(dynamic, case.query, workers=4)
        )
        assert parallel == sequential


# ----------------------------------------------------------------------
# Repair/rebuild dispatch and accounting
# ----------------------------------------------------------------------
class TestRepairDispatch:
    def test_constructor_guards(self):
        data, _ = small_instance()
        with pytest.raises(TypeError):
            IncrementalMatcher(data.to_static())
        with pytest.raises(ValueError):
            IncrementalMatcher(data, rebuild_threshold=1.5)
        with pytest.raises(ValueError):
            IncrementalMatcher(data, rebuild_threshold=-0.1)

    def test_empty_query_rejected(self):
        data, _ = small_instance()
        inc = IncrementalMatcher(data)
        with pytest.raises(GraphError):
            inc.prepare(Graph([], []))

    def test_label_disjoint_delta_is_noop(self):
        """A delta outside the query's labels keeps the plan object."""
        data, query = small_instance()
        inc = IncrementalMatcher(data)
        before = inc.prepare(query)
        data.remove_edge(4, 5)
        after = inc.prepare(query)
        assert after is before
        assert before.build_stats.cpi_repairs == 1
        assert before.build_stats.cpi_rebuilds == 0
        assert before.build_stats.dirty_region_size == 0
        assert embeddings_of(inc, query) == [(0, 2), (1, 3)]

    def test_dirty_delta_repairs_below_threshold(self):
        data, query = small_instance()
        inc = IncrementalMatcher(data, rebuild_threshold=1.0)
        inc.prepare(query)
        data.add_edge(0, 3)
        stats = inc.prepare(query).build_stats
        assert stats.cpi_repairs == 1
        assert stats.cpi_rebuilds == 0
        assert stats.dirty_region_size == len(
            dirty_region(query, frozenset({0, 1}))
        )
        assert embeddings_of(inc, query) == [(0, 2), (0, 3), (1, 3)]

    def test_zero_threshold_always_rebuilds_when_dirty(self):
        data, query = small_instance()
        inc = IncrementalMatcher(data, rebuild_threshold=0.0)
        inc.prepare(query)
        data.add_edge(0, 3)
        stats = inc.prepare(query).build_stats
        assert stats.cpi_repairs == 0
        assert stats.cpi_rebuilds == 1
        assert embeddings_of(inc, query) == [(0, 2), (0, 3), (1, 3)]

    def test_renumbering_removal_forces_rebuild(self):
        data, query = small_instance()
        inc = IncrementalMatcher(data)
        inc.prepare(query)
        data.remove_vertex(0)          # vertex 5 is renumbered to 0
        stats = inc.prepare(query).build_stats
        assert stats.cpi_rebuilds == 1
        cold = CFLMatch(data.to_static())
        assert embeddings_of(inc, query) == list(cold.search(query))

    def test_mutation_log_gap_forces_rebuild(self):
        data = DynamicGraph(
            [0, 0, 1, 1, 2, 2], [(0, 2), (1, 3), (4, 5)], log_limit=2
        )
        query = Graph([0, 1], [(0, 1)])
        inc = IncrementalMatcher(data)
        inc.prepare(query)
        data.add_edge(0, 3)
        data.add_edge(1, 2)
        data.remove_edge(0, 3)          # log keeps only the last 2 touches
        assert data.touches_since(0) is None
        stats = inc.prepare(query).build_stats
        assert stats.cpi_rebuilds == 1
        assert stats.cpi_repairs == 0
        assert embeddings_of(inc, query) == [(0, 2), (1, 2), (1, 3)]

    def test_initial_build_counters_match_production_builder(self):
        """The traced sweep IS the builder when everything is dirty."""
        for index in range(4):
            case = generate_delta_case(31, index)
            dynamic = DynamicGraph.from_graph(case.data)
            inc = IncrementalMatcher(dynamic)
            traced = inc.prepare(case.query).build_stats
            cold = CFLMatch(dynamic.to_static())
            want = cold.prepare(case.query, use_cache=False).build_stats
            assert traced.to_dict() == want.to_dict()

    def test_registration_lifecycle(self):
        data, query = small_instance()
        inc = IncrementalMatcher(data)
        assert inc.registration_count() == 0
        first = inc.prepare(query)
        assert inc.registration_count() == 1
        assert inc.prepare(query) is first      # same version: cached
        assert inc.forget(query)
        assert not inc.forget(query)
        assert inc.registration_count() == 0

    def test_count_and_limit_delegate(self):
        data, query = small_instance()
        inc = IncrementalMatcher(data)
        data.add_edge(0, 3)
        assert inc.count(query) == 3
        assert len(list(inc.search(query, limit=2))) == 2
        report = inc.run(query, collect=True)
        assert report.embeddings == 3
        assert report.results == [(0, 2), (0, 3), (1, 3)]


# ----------------------------------------------------------------------
# Continuous queries: created / tombstone streams
# ----------------------------------------------------------------------
class TestContinuousQuery:
    def test_created_and_tombstone_streams(self):
        data, query = small_instance()
        watch = ContinuousQuery(IncrementalMatcher(data), query)
        assert watch.embeddings == ((0, 2), (1, 3))

        event = watch.apply(Delta.add_edge(0, 3))
        assert event.version == 1
        assert event.created == ((0, 3),)
        assert event.destroyed == ()
        assert event.total == 3

        event = watch.apply(Delta.remove_edge(1, 3))
        assert event.created == ()
        assert event.destroyed == ((1, 3),)
        assert event.total == 2
        assert watch.embeddings == ((0, 2), (0, 3))

    def test_label_disjoint_delta_yields_empty_event(self):
        data, query = small_instance()
        watch = ContinuousQuery(IncrementalMatcher(data), query)
        event = watch.apply(Delta.remove_edge(4, 5))
        assert event.created == () and event.destroyed == ()
        assert event.total == 2

    def test_feed_replays_stream_lazily(self):
        data, query = small_instance()
        watch = ContinuousQuery(IncrementalMatcher(data), query)
        deltas = [Delta.add_edge(0, 3), Delta.add_edge(1, 2),
                  Delta.remove_edge(0, 2)]
        events = list(watch.feed(deltas))
        assert [e.version for e in events] == [1, 2, 3]
        assert [e.delta for e in events] == deltas
        assert events[-1].destroyed == ((0, 2),)
        assert watch.embeddings == ((0, 3), (1, 2), (1, 3))

    def test_events_agree_with_brute_recompute(self):
        """On a fuzz case, each event's diff equals the set difference
        of cold result sets before/after the delta."""
        case = generate_delta_case(57, 1)
        dynamic = DynamicGraph.from_graph(case.data)
        watch = ContinuousQuery(IncrementalMatcher(dynamic), case.query)
        for delta in case.deltas:
            before = set(
                CFLMatch(dynamic.to_static()).search(case.query)
            )
            event = watch.apply(delta)
            after = set(
                CFLMatch(dynamic.to_static()).search(case.query)
            )
            assert set(event.created) == after - before
            assert set(event.destroyed) == before - after
            assert event.total == len(after)

    def test_limit_tracks_enumeration_prefix(self):
        data, query = small_instance()
        watch = ContinuousQuery(IncrementalMatcher(data), query, limit=1)
        assert watch.embeddings == ((0, 2),)
        # Killing the tracked embedding promotes the next one into view.
        event = watch.apply(Delta.remove_edge(0, 2))
        assert event.destroyed == ((0, 2),)
        assert event.created == ((1, 3),)
        assert event.total == 1

"""Tests for the vectorized CPI builder (numpy fast path)."""

import pytest

from repro.core import CFLMatch, build_cpi
from repro.core.cpi_builder_numpy import _NumpyBuildState, build_cpi_numpy
from repro.core.filters import cand_verify
from repro.graph import Graph
from repro.workloads.paper_graphs import figure7_example
from tests.conftest import nx_monomorphisms, random_instance


class TestEquivalence:
    def test_identical_to_reference_on_figure7(self):
        ex = figure7_example()
        for refine in (False, True):
            reference = build_cpi(ex.query, ex.data, ex.q("u0"), refine=refine)
            fast = build_cpi_numpy(ex.query, ex.data, ex.q("u0"), refine=refine)
            assert fast.candidates == reference.candidates
            assert fast.adjacency == reference.adjacency

    def test_identical_on_random_instances(self, rng):
        for _ in range(30):
            data, query = random_instance(rng)
            for refine in (False, True):
                reference = build_cpi(query, data, 0, refine=refine)
                fast = build_cpi_numpy(query, data, 0, refine=refine)
                assert fast.candidates == reference.candidates
                assert fast.adjacency == reference.adjacency

    def test_verify_none(self):
        ex = figure7_example()
        reference = build_cpi(ex.query, ex.data, ex.q("u0"), verify=None)
        fast = build_cpi_numpy(ex.query, ex.data, ex.q("u0"), verify=None)
        assert fast.candidates == reference.candidates

    def test_custom_verify_callback(self):
        ex = figure7_example()
        custom = lambda q, g, u, v: v % 2 == 0  # arbitrary predicate
        reference = build_cpi(ex.query, ex.data, ex.q("u0"), verify=custom)
        fast = build_cpi_numpy(ex.query, ex.data, ex.q("u0"), verify=custom)
        assert fast.candidates == reference.candidates


class TestGatherNeighbors:
    def _state(self, graph):
        query = Graph([0], [])
        return _NumpyBuildState(query, graph, cand_verify)

    def test_gather_matches_adjacency(self):
        g = Graph([0, 0, 0, 0], [(0, 1), (0, 2), (1, 2), (2, 3)])
        state = self._state(g)
        gathered = state.gather_neighbors([0, 2])
        assert sorted(int(x) for x in gathered) == sorted(
            g.neighbors(0) + g.neighbors(2)
        )

    def test_gather_empty_input(self):
        g = Graph([0, 0], [(0, 1)])
        state = self._state(g)
        assert state.gather_neighbors([]).size == 0

    def test_gather_isolated_vertices(self):
        g = Graph([0, 0, 0], [(0, 1)])
        state = self._state(g)
        assert state.gather_neighbors([2]).size == 0
        assert state.gather_neighbors([2, 0]).tolist() == [1]


class TestMatcherIntegration:
    def test_numpy_matcher_matches_oracle(self, rng):
        for _ in range(10):
            data, query = random_instance(rng)
            got = set(CFLMatch(data, cpi_impl="numpy").search(query))
            assert got == nx_monomorphisms(query, data)

    def test_invalid_impl_rejected(self):
        with pytest.raises(ValueError):
            CFLMatch(Graph([0], []), cpi_impl="cython")

    def test_registered_in_harness(self):
        from repro.bench import MATCHERS

        assert "CFL-Match-NumPy" in MATCHERS

    def test_csr_cached(self):
        g = Graph([0, 1], [(0, 1)])
        first = g.csr()
        assert g.csr() is first
        indptr, indices, labels, degrees = first
        assert indptr.tolist() == [0, 1, 2]
        assert indices.tolist() == [1, 0]
        assert labels.tolist() == [0, 1]
        assert degrees.tolist() == [1, 1]

"""Tests for the result-verification tooling."""

from repro.baselines import QuickSIMatch
from repro.core import CFLMatch
from repro.core.verify import (
    EmbeddingSetDiff,
    diff_embedding_lists,
    verification_report,
    verify_matchers,
)
from repro.graph import Graph
from repro.workloads.paper_graphs import figure3_example


class _BrokenMatcher:
    """A deliberately wrong matcher for exercising the diff paths."""

    name = "Broken"

    def __init__(self, data, results_per_query):
        self.data = data
        self._results = results_per_query

    def search(self, query, limit=None):
        results = self._results
        return iter(results if limit is None else results[:limit])


class TestDiff:
    def test_identical_sets_ok(self):
        ex = figure3_example()
        embeddings = list(CFLMatch(ex.data).search(ex.query))
        diff = diff_embedding_lists(ex.query, ex.data, embeddings, embeddings)
        assert diff.ok
        assert "OK" in diff.describe()

    def test_missing_and_extra_detected(self):
        ex = figure3_example()
        embeddings = list(CFLMatch(ex.data).search(ex.query))
        candidate = embeddings[:-1] + [(0, 0, 0, 0, 0)]
        diff = diff_embedding_lists(ex.query, ex.data, embeddings, candidate)
        assert not diff.ok
        assert diff.missing == [embeddings[-1]] or embeddings[-1] in diff.missing
        assert (0, 0, 0, 0, 0) in diff.extra
        assert (0, 0, 0, 0, 0) in diff.invalid_candidate
        text = diff.describe()
        assert "MISMATCH" in text and "extra" in text

    def test_duplicates_detected(self):
        ex = figure3_example()
        embeddings = list(CFLMatch(ex.data).search(ex.query))
        diff = diff_embedding_lists(
            ex.query, ex.data, embeddings, embeddings + [embeddings[0]]
        )
        assert diff.duplicates_candidate == 1
        assert not diff.ok


class TestVerifyMatchers:
    def test_agreeing_matchers(self):
        ex = figure3_example()
        diffs = verify_matchers(
            ex.data, [ex.query, ex.query],
            CFLMatch(ex.data), QuickSIMatch(ex.data),
        )
        assert all(d.ok for d in diffs)
        report = verification_report(diffs)
        assert "2/2 queries agree" in report

    def test_broken_matcher_flagged(self):
        ex = figure3_example()
        broken = _BrokenMatcher(ex.data, [(0, 0, 0, 0, 0)])
        diffs = verify_matchers(ex.data, [ex.query], CFLMatch(ex.data), broken)
        assert not diffs[0].ok
        assert "MISMATCH" in verification_report(diffs)

    def test_limit_mode_checks_validity_only(self):
        """With a limit, differing first-k subsets are not mismatches."""
        data = Graph([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        query = Graph([0, 1], [(0, 1)])
        diffs = verify_matchers(
            data, [query], CFLMatch(data), QuickSIMatch(data), limit=2
        )
        assert diffs[0].ok
        assert diffs[0].reference_count == 2


class TestCLIVerify:
    def test_verify_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "wl"
        main(
            [
                "generate", "--dataset", "yeast", "--scale", "tiny",
                "--count", "2", "--query-sizes", "4", "--out", str(out),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "verify", "--workload", str(out),
                "--reference", "CFL-Match", "--candidate", "VF2",
                "--limit", "50",
            ]
        )
        assert code == 0
        assert "queries agree" in capsys.readouterr().out

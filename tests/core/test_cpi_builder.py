"""Unit tests for CPI construction (Algorithms 3 & 4, Examples 5.1/5.2)."""

from repro.core import build_cpi, build_naive_cpi
from repro.core.cpi import QueryBFSTree
from repro.core.cpi_builder import _top_down_construct
from repro.core.filters import cand_verify
from repro.graph import Graph
from repro.workloads.paper_graphs import figure7_example
from tests.conftest import nx_monomorphisms, random_instance


def _names(ex, cpi, query_name):
    inverse = {i: n for n, i in ex.data_ids.items()}
    return sorted(
        (inverse[v] for v in cpi.candidates[ex.q(query_name)]),
        key=lambda s: int(s[1:]),
    )


class TestExample51TopDown:
    """Every intermediate state of the paper's Example 5.1."""

    def _top_down(self, ex):
        tree = QueryBFSTree.build(ex.query, ex.q("u0"))
        return _top_down_construct(tree, ex.data, cand_verify)

    def test_root_candidates(self):
        ex = figure7_example()
        assert _names(ex, self._top_down(ex), "u0") == ["v1", "v2"]

    def test_u1_after_backward_pruning(self):
        """Forward gives {v3,v5,v7,v9}; the backward pass removes v9."""
        ex = figure7_example()
        assert _names(ex, self._top_down(ex), "u1") == ["v3", "v5", "v7"]

    def test_u2_candverify_prunes_v10(self):
        ex = figure7_example()
        assert _names(ex, self._top_down(ex), "u2") == ["v4", "v6", "v8"]

    def test_u3_counting_prunes_v13_v15(self):
        ex = figure7_example()
        assert _names(ex, self._top_down(ex), "u3") == ["v11", "v12"]


class TestExample52BottomUp:
    """Every pruning step of the paper's Example 5.2."""

    def test_final_candidate_sets(self):
        ex = figure7_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        assert _names(ex, cpi, "u0") == ["v1"]
        assert _names(ex, cpi, "u1") == ["v3", "v5"]
        assert _names(ex, cpi, "u2") == ["v4", "v6"]
        assert _names(ex, cpi, "u3") == ["v11", "v12"]

    def test_v7_removed_from_v1_adjacency(self):
        ex = figure7_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        row = cpi.child_candidates(ex.q("u1"), ex.v("v1"))
        assert sorted(row) == sorted([ex.v("v3"), ex.v("v5")])

    def test_pruned_parents_lose_adjacency_lists(self):
        ex = figure7_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        assert cpi.child_candidates(ex.q("u1"), ex.v("v2")) == ()

    def test_refinement_only_shrinks(self):
        ex = figure7_example()
        tree = QueryBFSTree.build(ex.query, ex.q("u0"))
        td = _top_down_construct(tree, ex.data, cand_verify)
        full = build_cpi(ex.query, ex.data, ex.q("u0"))
        for u in ex.query.vertices():
            assert set(full.candidates[u]) <= set(td.candidates[u])


class TestSoundness:
    def test_cpi_contains_all_true_embeddings(self, rng):
        """Lemmas 5.2/5.3: u.C contains M(u) for every embedding M."""
        for _ in range(25):
            data, query = random_instance(rng)
            truth = nx_monomorphisms(query, data)
            for refine in (False, True):
                cpi = build_cpi(query, data, 0, refine=refine)
                for emb in truth:
                    for u, v in enumerate(emb):
                        assert v in cpi.cand_sets[u], (u, v, refine)

    def test_adjacency_soundness(self, rng):
        """Tree-edge images of true embeddings survive in adjacency lists."""
        for _ in range(15):
            data, query = random_instance(rng)
            truth = nx_monomorphisms(query, data)
            cpi = build_cpi(query, data, 0)
            for emb in truth:
                for u in query.vertices():
                    p = cpi.tree.parent[u]
                    if p is None:
                        continue
                    assert emb[u] in cpi.child_candidates(u, emb[p])

    def test_verify_none_disables_candverify(self):
        ex = figure7_example()
        tree = QueryBFSTree.build(ex.query, ex.q("u0"))
        unfiltered = _top_down_construct(tree, ex.data, None)
        # without CandVerify, v10 survives the forward pass for u2
        assert ex.v("v10") in unfiltered.candidates[ex.q("u2")]


class TestNaiveCPI:
    def test_candidates_are_label_sets(self):
        ex = figure7_example()
        cpi = build_naive_cpi(ex.query, ex.data, ex.q("u0"))
        for u in ex.query.vertices():
            expected = ex.data.vertices_with_label(ex.query.label(u))
            assert cpi.candidates[u] == list(expected)

    def test_naive_is_superset_of_refined(self):
        ex = figure7_example()
        naive = build_naive_cpi(ex.query, ex.data, ex.q("u0"))
        full = build_cpi(ex.query, ex.data, ex.q("u0"))
        for u in ex.query.vertices():
            assert set(full.candidates[u]) <= set(naive.candidates[u])

    def test_naive_adjacency_edges_exist_in_data(self):
        ex = figure7_example()
        cpi = build_naive_cpi(ex.query, ex.data, ex.q("u0"))
        for u in ex.query.vertices():
            for v_p, row in cpi.adjacency[u].items():
                for v in row:
                    assert ex.data.has_edge(v_p, v)


class TestEdgeCases:
    def test_single_vertex_query(self):
        data = Graph([0, 0, 1], [(0, 1), (1, 2)])
        query = Graph([0], [])
        cpi = build_cpi(query, data, 0)
        assert cpi.candidates[0] == [0, 1]

    def test_no_candidates_anywhere(self):
        data = Graph([0, 0], [(0, 1)])
        query = Graph([9, 9], [(0, 1)])
        cpi = build_cpi(query, data, 0)
        assert cpi.is_empty()
        assert cpi.candidates == [[], []]

    def test_empty_propagates_through_refinement(self):
        """If a child has no candidates, refinement empties ancestors."""
        data = Graph([0, 1], [(0, 1)])
        query = Graph([0, 1, 2], [(0, 1), (1, 2)])  # label 2 missing in data
        cpi = build_cpi(query, data, 0)
        assert cpi.candidates[2] == []
        assert cpi.candidates[1] == []
        assert cpi.candidates[0] == []

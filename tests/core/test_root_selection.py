"""Unit tests for BFS-root selection (Section A.6)."""

import pytest

from repro.core import select_root
from repro.graph import Graph, GraphError
from repro.workloads.paper_graphs import figure7_example


class TestSelectRoot:
    def test_figure7_picks_u0(self):
        """Section A.6's example: u0 has |C|/d = 2/2 = 1, the minimum."""
        ex = figure7_example()
        assert select_root(ex.query, ex.data) == ex.q("u0")

    def test_prefers_rare_labels(self):
        # query: edge with labels 0 (frequent in data) and 1 (rare)
        query = Graph([0, 1], [(0, 1)])
        data = Graph([0, 0, 0, 0, 1], [(0, 4), (1, 4), (2, 4), (3, 4)])
        assert select_root(query, data) == 1

    def test_eligible_restricts_pool(self):
        query = Graph([0, 1], [(0, 1)])
        data = Graph([0, 0, 0, 0, 1], [(0, 4), (1, 4), (2, 4), (3, 4)])
        assert select_root(query, data, eligible=[0]) == 0

    def test_empty_pool_rejected(self):
        query = Graph([0], [])
        data = Graph([0], [])
        with pytest.raises(GraphError):
            select_root(query, data, eligible=[])

    def test_degree_breaks_candidate_ties(self):
        # both labels equally frequent; vertex 1 has higher query degree
        query = Graph([0, 1, 0, 0], [(0, 1), (1, 2), (1, 3)])
        data = Graph(
            [0, 0, 0, 1],
            [(0, 3), (1, 3), (2, 3)],
        )
        assert select_root(query, data) == 1

    def test_root_is_deterministic(self):
        query = Graph([0, 0], [(0, 1)])
        data = Graph([0, 0], [(0, 1)])
        assert select_root(query, data) == select_root(query, data) == 0

"""Unit tests for the CPI backtracking engine (Algorithm 5)."""

import time

import pytest

from repro.core import (
    CPIBacktracker,
    SearchStats,
    build_cpi,
    build_ordered_vertices,
    order_structure,
    validate_embedding,
)
from repro.core.core_match import SearchTimeout
from repro.graph import Graph
from tests.conftest import brute_force_embeddings


def _engine_embeddings(query, data, check_non_tree=True):
    cpi = build_cpi(query, data, 0)
    if cpi.is_empty():
        return set()
    order = order_structure(cpi, 0, set(query.vertices()))
    slots = build_ordered_vertices(cpi, order, check_non_tree=check_non_tree)
    engine = CPIBacktracker(cpi, slots)
    mapping = [-1] * query.num_vertices
    used = bytearray(data.num_vertices)
    out = set()
    for _ in engine.extend(mapping, used):
        out.add(tuple(mapping))
    return out


class TestBacktracker:
    def test_triangle_in_triangle(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        assert _engine_embeddings(triangle_query, data) == {(0, 1, 2)}

    def test_no_match_wrong_topology(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2)])  # path, no triangle
        assert _engine_embeddings(triangle_query, data) == set()

    def test_matches_brute_force(self, rng):
        from tests.conftest import random_instance

        for _ in range(25):
            data, query = random_instance(rng)
            assert _engine_embeddings(query, data) == brute_force_embeddings(query, data)

    def test_state_restored_after_exhaustion(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        cpi = build_cpi(triangle_query, data, 0)
        order = order_structure(cpi, 0, {0, 1, 2})
        slots = build_ordered_vertices(cpi, order)
        engine = CPIBacktracker(cpi, slots)
        mapping = [-1, -1, -1]
        used = bytearray(3)
        for _ in engine.extend(mapping, used):
            pass
        assert mapping == [-1, -1, -1]
        assert bytes(used) == b"\x00\x00\x00"

    def test_empty_order_yields_once(self):
        data = Graph([0], [])
        query = Graph([0], [])
        cpi = build_cpi(query, data, 0)
        engine = CPIBacktracker(cpi, [])
        assert sum(1 for _ in engine.extend([-1], bytearray(1))) == 1

    def test_stats_count_nodes(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        cpi = build_cpi(triangle_query, data, 0)
        order = order_structure(cpi, 0, {0, 1, 2})
        slots = build_ordered_vertices(cpi, order)
        stats = SearchStats()
        engine = CPIBacktracker(cpi, slots, stats)
        for _ in engine.extend([-1, -1, -1], bytearray(3)):
            pass
        assert stats.nodes == 3  # one candidate per slot

    def test_stats_merge(self):
        merged = SearchStats(nodes=2, embeddings=1).merged_with(
            SearchStats(nodes=3, embeddings=4)
        )
        assert merged.nodes == 5
        assert merged.embeddings == 5

    def test_deadline_raises(self):
        """A deadline in the past aborts promptly via SearchTimeout."""
        # A dense same-label instance with a huge search space.
        n = 14
        data = Graph([0] * n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        query = Graph([0] * 8, [(i, j) for i in range(8) for j in range(i + 1, 8)])
        cpi = build_cpi(query, data, 0)
        order = order_structure(cpi, 0, set(query.vertices()))
        slots = build_ordered_vertices(cpi, order)
        engine = CPIBacktracker(cpi, slots, deadline=time.perf_counter() - 1.0)
        with pytest.raises(SearchTimeout):
            for _ in engine.extend([-1] * 8, bytearray(n)):
                pass


class TestBuildOrderedVertices:
    def test_first_slot_has_no_parent(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        cpi = build_cpi(triangle_query, data, 0)
        slots = build_ordered_vertices(cpi, [0, 1, 2])
        assert slots[0].tree_parent is None
        assert slots[1].tree_parent == 0

    def test_backward_neighbors_collected(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        cpi = build_cpi(triangle_query, data, 0)
        slots = build_ordered_vertices(cpi, [0, 1, 2])
        # the triangle has one non-tree edge; it appears at the later slot
        backward = [s.backward_neighbors for s in slots]
        assert backward[0] == ()
        assert sum(len(b) for b in backward) == 1

    def test_check_non_tree_false_drops_backward(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        cpi = build_cpi(triangle_query, data, 0)
        slots = build_ordered_vertices(cpi, [0, 1, 2], check_non_tree=False)
        assert all(s.backward_neighbors == () for s in slots)

    def test_already_mapped_enables_parent(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        cpi = build_cpi(triangle_query, data, 0)
        slots = build_ordered_vertices(cpi, [1], already_mapped=[0])
        assert slots[0].tree_parent == 0


class TestValidateEmbedding:
    def test_accepts_valid(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        assert validate_embedding(triangle_query, data, (0, 1, 2))

    def test_rejects_non_injective(self, path_query):
        data = Graph([0, 1], [(0, 1)])
        assert not validate_embedding(path_query, data, (0, 1, 0))

    def test_rejects_label_mismatch(self, triangle_query):
        data = Graph([0, 1, 1], [(0, 1), (1, 2), (0, 2)])
        assert not validate_embedding(triangle_query, data, (0, 1, 2))

    def test_rejects_missing_edge(self, triangle_query):
        data = Graph([0, 1, 2, 2], [(0, 1), (1, 2), (0, 3)])
        assert not validate_embedding(triangle_query, data, (0, 1, 2))

    def test_rejects_out_of_range(self, path_query):
        data = Graph([0, 1, 0], [(0, 1), (1, 2)])
        assert not validate_embedding(path_query, data, (0, 1, 99))

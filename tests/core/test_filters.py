"""Unit tests for candidate filters (CandVerify, Section A.6)."""

from repro.core import cand_verify, full_candidate_check, label_degree_ok, mnd_ok, nlf_ok
from repro.graph import Graph


def star(center_label, leaf_labels):
    """Star graph: vertex 0 is the center."""
    labels = [center_label] + list(leaf_labels)
    return Graph(labels, [(0, i + 1) for i in range(len(leaf_labels))])


class TestLabelDegree:
    def test_label_mismatch(self):
        q = star(0, [1])
        d = star(2, [1])
        assert not label_degree_ok(q, d, 0, 0)

    def test_degree_too_small(self):
        q = star(0, [1, 1, 1])
        d = star(0, [1, 1])
        assert not label_degree_ok(q, d, 0, 0)

    def test_degree_larger_is_fine(self):
        q = star(0, [1])
        d = star(0, [1, 1, 1])
        assert label_degree_ok(q, d, 0, 0)


class TestMND:
    def test_mnd_prunes(self):
        # query center's neighbor has degree 3; data neighborhood is all degree-1
        q = Graph([0, 1, 2, 2], [(0, 1), (1, 2), (1, 3)])
        d = Graph([0, 1], [(0, 1)])
        assert q.mnd(0) == 3
        assert d.mnd(0) == 1
        assert not mnd_ok(q, d, 0, 0)
        assert not cand_verify(q, d, 0, 0)

    def test_mnd_passes_when_equal(self):
        q = Graph([0, 1], [(0, 1)])
        d = Graph([0, 1], [(0, 1)])
        assert mnd_ok(q, d, 0, 0)


class TestNLF:
    def test_nlf_counts_matter(self):
        # query center needs two label-1 neighbors
        q = star(0, [1, 1])
        d_ok = star(0, [1, 1, 2])
        d_bad = star(0, [1, 2, 2])
        assert nlf_ok(q, d_ok, 0, 0)
        assert not nlf_ok(q, d_bad, 0, 0)

    def test_extra_labels_do_not_hurt(self):
        q = star(0, [1])
        d = star(0, [1, 5, 6])
        assert nlf_ok(q, d, 0, 0)

    def test_missing_label_fails(self):
        q = star(0, [3])
        d = star(0, [1, 2])
        assert not nlf_ok(q, d, 0, 0)


class TestCandVerify:
    def test_figure7_v10_fails_nlf(self):
        """The paper's Example 5.1: v10 pruned for lacking a D neighbor."""
        from repro.workloads.paper_graphs import figure7_example

        ex = figure7_example()
        assert not cand_verify(ex.query, ex.data, ex.q("u2"), ex.v("v10"))
        assert cand_verify(ex.query, ex.data, ex.q("u2"), ex.v("v4"))

    def test_full_check_combines_all(self):
        q = star(0, [1, 1])
        d = star(0, [1, 1])
        assert full_candidate_check(q, d, 0, 0)
        assert not full_candidate_check(q, d, 0, 1)  # leaf has wrong label

    def test_soundness_on_random_instances(self, rng):
        """No true embedding image may ever be filtered out."""
        from tests.conftest import nx_monomorphisms, random_instance

        for _ in range(15):
            data, query = random_instance(rng)
            for emb in nx_monomorphisms(query, data):
                for u, v in enumerate(emb):
                    assert full_candidate_check(query, data, u, v)

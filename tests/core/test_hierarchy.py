"""Tests for the A.5 forest-IS result and the hierarchical-core extension."""

import pytest

from repro.core import (
    CFLMatch,
    build_cpi,
    cfl_decompose,
    forest_independent_set,
    hierarchical_core_order,
    hierarchical_shells,
)
from repro.graph import Graph, GraphError, random_connected_graph
from repro.workloads.paper_graphs import figure4_query
from tests.conftest import nx_monomorphisms, random_instance


class TestForestIndependentSet:
    def test_figure4(self):
        query, ids = figure4_query()
        d = cfl_decompose(query)
        cover, independent = forest_independent_set(query, d)
        assert independent == sorted(ids[n] for n in ("u7", "u8", "u9", "u10"))
        # cMVC = connection vertices + degree>=2 forest vertices
        assert cover == sorted(ids[n] for n in ("u1", "u2", "u3", "u4", "u5", "u6"))

    def test_independent_set_equals_leaf_set(self, rng):
        """Section A.5: the leaf-set IS the maximal forest independent set."""
        for _ in range(40):
            q = random_connected_graph(rng.randrange(2, 25), rng.randrange(0, 10), 3, rng)
            d = cfl_decompose(q)
            _cover, independent = forest_independent_set(q, d)
            assert independent == d.leaves

    def test_independence(self, rng):
        """No edge joins two independent-set vertices."""
        for _ in range(30):
            q = random_connected_graph(rng.randrange(2, 20), rng.randrange(0, 8), 3, rng)
            d = cfl_decompose(q)
            _, independent = forest_independent_set(q, d)
            ind = set(independent)
            for u, v in q.edges():
                assert not (u in ind and v in ind)

    def test_cover_covers_forest_edges(self, rng):
        """Every forest edge has at least one endpoint in the cMVC."""
        for _ in range(30):
            q = random_connected_graph(rng.randrange(2, 20), rng.randrange(0, 8), 3, rng)
            d = cfl_decompose(q)
            cover, _ = forest_independent_set(q, d)
            cov = set(cover)
            core = d.core_set
            for u, v in q.edges():
                if u in core and v in core:
                    continue  # a core edge, not a forest edge
                assert u in cov or v in cov


class TestHierarchicalShells:
    def test_uniform_cycle_is_one_shell(self):
        q = Graph([0] * 4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        d = cfl_decompose(q)
        shells = hierarchical_shells(q, d.core)
        assert shells == {2: [0, 1, 2, 3]}

    def test_clique_with_cycle_appendage(self):
        # K4 (coreness 3) with a cycle through vertices 3-4-5 (coreness 2)
        q = Graph(
            [0] * 6,
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (3, 5)],
        )
        d = cfl_decompose(q)
        shells = hierarchical_shells(q, d.core)
        assert shells[3] == [0, 1, 2, 3]
        assert shells[2] == [4, 5]


class TestHierarchicalCoreOrder:
    def _cpi(self, query, data, root):
        return build_cpi(query, data, root)

    def test_order_is_connected_and_complete(self, rng):
        for _ in range(20):
            data, query = random_instance(rng, query_vertices=(3, 7))
            d = cfl_decompose(query)
            if len(d.core) < 2:
                continue
            cpi = self._cpi(query, data, d.core[0])
            order = hierarchical_core_order(cpi, d.core, d.core[0])
            assert sorted(order) == sorted(d.core)
            placed = {order[0]}
            for u in order[1:]:
                assert any(w in placed for w in query.neighbors(u))
                placed.add(u)

    def test_deeper_shells_first(self):
        q = Graph(
            [0] * 6,
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5), (3, 5)],
        )
        data = q  # match the query against itself
        d = cfl_decompose(q)
        cpi = self._cpi(q, data, 3)
        order = hierarchical_core_order(cpi, d.core, 3)
        # the K4 (coreness 3) is fully ordered before the 2-shell {4, 5}
        assert set(order[:4]) == {0, 1, 2, 3}

    def test_bad_root_rejected(self):
        q = Graph([0, 0, 0], [(0, 1), (1, 2), (0, 2)])
        cpi = self._cpi(q, q, 0)
        with pytest.raises(GraphError):
            hierarchical_core_order(cpi, [0, 1, 2], 99)


class TestHierarchicalMatcher:
    def test_matches_oracle(self, rng):
        for _ in range(12):
            data, query = random_instance(rng)
            got = set(CFLMatch(data, core_strategy="hierarchical").search(query))
            assert got == nx_monomorphisms(query, data)

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            CFLMatch(Graph([0], []), core_strategy="bogus")

    def test_counts_agree_with_default(self, rng):
        for _ in range(10):
            data, query = random_instance(rng)
            default = CFLMatch(data).count(query)
            hierarchical = CFLMatch(data, core_strategy="hierarchical").count(query)
            assert default == hierarchical

"""Unit tests for the Section 2.1 cost model — including the paper's
headline numbers T_iso = 200302 vs T'_iso = 2302 (Section 3)."""

import pytest

from repro.core import evaluate_order_cost
from repro.graph import Graph, GraphError
from repro.workloads.paper_graphs import figure1_example, figure3_example


def _figure1_parents(ex):
    parent = [None] * 6
    for child, par in (("u2", "u1"), ("u3", "u2"), ("u4", "u3"), ("u5", "u1"), ("u6", "u5")):
        parent[ex.q(child)] = ex.q(par)
    return parent


class TestFigure1Numbers:
    def test_paper_order_costs(self):
        """Section 3: 200302 for the edge/path order, 2302 for CFL's."""
        ex = figure1_example(100, 1000)
        parent = _figure1_parents(ex)
        bad = evaluate_order_cost(
            ex.query, ex.data, [ex.q(n) for n in ("u1", "u2", "u3", "u4", "u5", "u6")], parent
        )
        good = evaluate_order_cost(
            ex.query, ex.data, [ex.q(n) for n in ("u1", "u2", "u5", "u3", "u4", "u6")], parent
        )
        assert bad.total == 200302
        assert good.total == 2302

    def test_paper_search_breadths(self):
        """Section 3: B_1..B_5 = 1, 1, 100, 100, 100 for the bad order."""
        ex = figure1_example(100, 1000)
        parent = _figure1_parents(ex)
        breakdown = evaluate_order_cost(
            ex.query, ex.data, [ex.q(n) for n in ("u1", "u2", "u3", "u4", "u5", "u6")], parent
        )
        assert breakdown.breadths == [1, 1, 100, 100, 100, 100]

    def test_non_tree_counts(self):
        ex = figure1_example(10, 10)
        parent = _figure1_parents(ex)
        breakdown = evaluate_order_cost(
            ex.query, ex.data, [ex.q(n) for n in ("u1", "u2", "u3", "u4", "u5", "u6")], parent
        )
        # only u5 carries the non-tree edge (u2, u5) in this order
        assert breakdown.non_tree_counts == [0, 0, 0, 0, 1, 0]


class TestExample21:
    def test_r_values(self):
        """Example 2.1: r_3 = 0 and r_4 = 1 for order (u1..u5)."""
        ex = figure3_example()
        parent = [None] * 5
        parent[ex.q("u2")] = ex.q("u1")
        parent[ex.q("u3")] = ex.q("u1")
        parent[ex.q("u4")] = ex.q("u2")
        parent[ex.q("u5")] = ex.q("u3")
        order = [ex.q(n) for n in ("u1", "u2", "u3", "u4", "u5")]
        breakdown = evaluate_order_cost(ex.query, ex.data, order, parent)
        assert breakdown.non_tree_counts[2] == 0  # r_3
        assert breakdown.non_tree_counts[3] == 1  # r_4
        # final breadth = the number of embeddings (3, Section 2)
        assert breakdown.breadths[-1] == 3


class TestValidation:
    def _simple(self):
        query = Graph([0, 1], [(0, 1)])
        data = Graph([0, 1], [(0, 1)])
        return query, data

    def test_empty_order_rejected(self):
        query, data = self._simple()
        with pytest.raises(GraphError, match="empty"):
            evaluate_order_cost(query, data, [], [None, 0])

    def test_incomplete_order_rejected(self):
        query, data = self._simple()
        with pytest.raises(GraphError, match="cover"):
            evaluate_order_cost(query, data, [0], [None, 0])

    def test_first_vertex_with_parent_rejected(self):
        query, data = self._simple()
        with pytest.raises(GraphError, match="first"):
            evaluate_order_cost(query, data, [1, 0], [None, 0])

    def test_parent_must_precede(self):
        query = Graph([0, 1, 2], [(0, 1), (0, 2)])
        data = Graph([0, 1, 2], [(0, 1), (0, 2)])
        with pytest.raises(GraphError, match="precede"):
            evaluate_order_cost(query, data, [0, 1, 2], [None, 2, 0])

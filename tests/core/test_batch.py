"""Batch-engine suite: shared caches must not change any observable.

The contract under test (see ``repro/core/batch.py``):

* every query in a batch returns bit-identical embeddings, enumeration
  order and per-query ``SearchStats``/``build_stats`` to a fresh
  one-at-a-time matcher, on every fuzz scenario;
* the auxiliary adjacency cache respects its byte budget (LRU eviction)
  without changing results;
* a budget-truncated query cannot poison the shared caches for later
  queries (entries are built whole before first use);
* the frontier-vectorized kernel path is bit-identical to the scalar
  path in embeddings, order and *all* counters, and agrees with the
  reference engine.
"""

import random

import pytest

from repro.core import CFLMatch
from repro.core.batch import (
    AuxAdjacencyCache,
    BatchMatcher,
    batch_execution_order,
    degree_bucket,
    label_signature,
)
from repro.core.stats import SearchStats
from repro.graph.generators import random_walk_query
from repro.testing.workloads import (
    CONNECTED_QUERY_SCENARIOS,
    WorkloadSpec,
    generate_case,
)

#: Dense enough that core slots carry backward non-tree edges, so the
#: eager intersection (and its vectorized variant) actually runs.
DENSE_SPEC = WorkloadSpec(
    scenarios=("dense",), data_vertices=(60, 60), query_vertices=(7, 7)
)


def batch_for(case, seed, extras=2):
    """A small batch over ``case.data``: the case query, a duplicate of
    it (plan-cache hit), and a few random-walk queries."""
    queries = [case.query, case.query]
    rng = random.Random(seed * 1000 + 17)
    for _ in range(extras):
        size = min(4 + rng.randrange(3), case.data.num_vertices)
        try:
            queries.append(random_walk_query(case.data, size, rng))
        except Exception:
            queries.append(case.query)
    return queries


def one_at_a_time(data, queries, **matcher_kwargs):
    """The serving baseline: a fresh matcher (fresh caches) per query."""
    reports = []
    for query in queries:
        matcher = CFLMatch(data, **matcher_kwargs)
        reports.append(matcher.run(query, collect=True))
    return reports


class TestBatchDifferential:
    @pytest.mark.parametrize("scenario", CONNECTED_QUERY_SCENARIOS)
    def test_batch_matches_one_at_a_time(self, scenario):
        spec = WorkloadSpec(scenarios=(scenario,))
        for seed in range(3):
            case = generate_case(seed, 0, spec)
            queries = batch_for(case, seed)
            baseline = one_at_a_time(case.data, queries)
            report = BatchMatcher(case.data).run(
                queries, count_only=False, collect=True
            )
            assert len(report.results) == len(queries)
            for index, result in enumerate(report.results):
                expected = baseline[index]
                assert result.index == index
                assert result.embeddings == expected.embeddings, case.describe()
                # Same embeddings in the same order (not just the same set).
                assert result.results == expected.results, case.describe()
                # Bit-identical per-query counters: enumeration AND build.
                assert (
                    result.stats.to_dict() == expected.stats.to_dict()
                ), case.describe()
                assert (
                    result.build_stats.to_dict()
                    == expected.build_stats.to_dict()
                ), case.describe()

    def test_numpy_builder_batch_matches(self):
        case = generate_case(1, 0, DENSE_SPEC)
        queries = batch_for(case, 1)
        baseline = one_at_a_time(case.data, queries, cpi_impl="numpy")
        report = BatchMatcher(case.data, cpi_impl="numpy").run(
            queries, count_only=False, collect=True
        )
        for index, result in enumerate(report.results):
            assert result.results == baseline[index].results
            assert result.stats.to_dict() == baseline[index].stats.to_dict()

    def test_duplicate_queries_hit_the_plan_cache(self):
        case = generate_case(0, 0, DENSE_SPEC)
        report = BatchMatcher(case.data).run([case.query] * 4)
        assert report.plan_cache_hits == 3
        counts = {result.embeddings for result in report.results}
        assert len(counts) == 1

    def test_aux_counters_flow_to_the_report(self):
        case = generate_case(0, 0, DENSE_SPEC)
        report = BatchMatcher(case.data).run(batch_for(case, 0))
        assert report.aux_stats.aux_adj_misses > 0
        assert report.aux_stats.aux_adj_bytes > 0
        assert 0.0 <= report.aux_hit_rate <= 1.0
        payload = report.to_dict()
        assert payload["aux"]["misses"] == report.aux_stats.aux_adj_misses
        # aux counters live batch-side only: per-query counters must not
        # carry them, or batch runs would diverge from one-at-a-time.
        for result in report.results:
            assert result.stats.aux_adj_hits == 0
            assert result.build_stats.aux_adj_hits == 0
            assert result.build_stats.aux_adj_misses == 0

    def test_disabled_aux_matches_too(self):
        case = generate_case(2, 0, DENSE_SPEC)
        queries = batch_for(case, 2)
        with_aux = BatchMatcher(case.data).run(
            queries, count_only=False, collect=True
        )
        without = BatchMatcher(case.data, use_aux=False).run(
            queries, count_only=False, collect=True
        )
        assert without.aux_stats.aux_adj_misses == 0
        for a, b in zip(with_aux.results, without.results):
            assert a.results == b.results
            assert a.stats.to_dict() == b.stats.to_dict()


class TestAuxCache:
    def test_degree_bucket(self):
        assert degree_bucket(0) == 0
        assert degree_bucket(-3) == 0
        assert degree_bucket(1) == 1
        assert degree_bucket(2) == 2
        assert degree_bucket(3) == 2
        assert degree_bucket(8) == 8
        assert degree_bucket(9) == 8

    def test_rows_are_filtered_subsequences(self):
        case = generate_case(0, 0, DENSE_SPEC)
        data = case.data
        cache = AuxAdjacencyCache(data)
        parent_label = data.label(0)
        child_label = data.label(data.adj[0][0]) if data.adj[0] else 0
        entry = cache.lookup(parent_label, child_label, 2)
        for v in data.vertices_with_label(parent_label):
            row = list(entry.row(v))
            expected = [
                w for w in data.adj[v]
                if data.label(w) == child_label
                and len(data.adj[w]) >= entry.bucket
            ]
            assert row == expected

    def test_lookup_counters_and_lru(self):
        case = generate_case(0, 0, DENSE_SPEC)
        cache = AuxAdjacencyCache(case.data)
        cache.lookup(0, 0, 2)
        assert cache.stats.aux_adj_misses == 1
        cache.lookup(0, 0, 3)  # same bucket as degree 2
        assert cache.stats.aux_adj_hits == 1
        cache.lookup(0, 0, 4)  # next bucket: a distinct entry
        assert cache.stats.aux_adj_misses == 2
        assert len(cache) == 2

    def test_eviction_respects_byte_budget(self):
        case = generate_case(0, 0, DENSE_SPEC)
        queries = batch_for(case, 0)
        tiny = BatchMatcher(case.data, aux_max_bytes=256)
        report = tiny.run(queries, count_only=False, collect=True)
        assert tiny.aux.evictions > 0
        # at most one over-budget entry may remain resident
        assert len(tiny.aux) >= 1
        # aux_adj_bytes is cumulative; bytes_in_use is the live footprint
        assert report.aux_stats.aux_adj_bytes >= tiny.aux.bytes_in_use
        baseline = one_at_a_time(case.data, queries)
        for index, result in enumerate(report.results):
            assert result.results == baseline[index].results
            assert result.stats.to_dict() == baseline[index].stats.to_dict()

    def test_truncated_query_cannot_poison_the_cache(self):
        case = generate_case(0, 0, DENSE_SPEC)
        matcher = BatchMatcher(case.data)
        hard = matcher.run([case.query], time_limit_s=0.0)
        assert hard.results[0].status == "timed_out"
        assert hard.results[0].embeddings == 0
        # The same shared matcher (plan + aux caches warm or partially
        # warm) must now serve a fresh query exactly like a no-cache run.
        probe = random_walk_query(case.data, 5, random.Random(99))
        after = matcher.run([probe], count_only=False, collect=True)
        fresh = one_at_a_time(case.data, [probe])[0]
        assert after.results[0].results == fresh.results
        assert after.results[0].stats.to_dict() == fresh.stats.to_dict()
        assert (
            after.results[0].build_stats.to_dict()
            == fresh.build_stats.to_dict()
        )


class TestExecutionOrder:
    def test_grouped_by_signature_stable(self):
        case = generate_case(0, 0, DENSE_SPEC)
        other = random_walk_query(case.data, 4, random.Random(5))
        queries = [case.query, other, case.query, other, case.query]
        order = batch_execution_order(queries)
        assert sorted(order) == list(range(len(queries)))
        assert order == [0, 2, 4, 1, 3]

    def test_signature_is_label_structural(self):
        case = generate_case(0, 0, DENSE_SPEC)
        assert label_signature(case.query) == label_signature(case.query)

    def test_results_come_back_in_input_order(self):
        case = generate_case(0, 0, DENSE_SPEC)
        other = random_walk_query(case.data, 4, random.Random(5))
        queries = [other, case.query, other]
        report = BatchMatcher(case.data).run(queries)
        assert [result.index for result in report.results] == [0, 1, 2]
        assert report.results[0].embeddings == report.results[2].embeddings


class TestVectorizedKernel:
    def test_vector_mode_validated(self):
        case = generate_case(0, 0, DENSE_SPEC)
        with pytest.raises(ValueError, match="vector_mode"):
            CFLMatch(case.data, vector_mode="sometimes")

    @pytest.mark.parametrize("scenario", CONNECTED_QUERY_SCENARIOS)
    def test_forced_on_bit_identical_to_scalar(self, scenario):
        spec = WorkloadSpec(scenarios=(scenario,))
        for seed in range(3):
            case = generate_case(seed, 0, spec)
            scalar = CFLMatch(case.data, vector_mode="off")
            vector = CFLMatch(
                case.data, vector_mode="on", vector_min_row=1
            )
            s_stats, v_stats = SearchStats(), SearchStats()
            s_emb = list(scalar.search(case.query, stats=s_stats))
            v_emb = list(vector.search(case.query, stats=v_stats))
            assert s_emb == v_emb, case.describe()
            # every counter, not just the headline ones
            assert s_stats.to_dict() == v_stats.to_dict(), case.describe()

    def test_forced_on_matches_reference_engine(self):
        case = generate_case(3, 0, DENSE_SPEC)
        reference = CFLMatch(case.data, engine="reference")
        vector = CFLMatch(case.data, vector_mode="on", vector_min_row=1)
        assert list(reference.search(case.query)) == list(
            vector.search(case.query)
        )

    def test_limit_truncation_same_prefix(self):
        case = generate_case(0, 0, DENSE_SPEC)
        scalar = CFLMatch(case.data, vector_mode="off")
        vector = CFLMatch(case.data, vector_mode="on", vector_min_row=1)
        for limit in (1, 7, 100):
            assert list(scalar.search(case.query, limit=limit)) == list(
                vector.search(case.query, limit=limit)
            )

    def test_auto_decision_memoized_on_plan(self):
        case = generate_case(0, 0, DENSE_SPEC)
        matcher = CFLMatch(case.data, vector_mode="auto", vector_breadth=1)
        plan = matcher.prepare(case.query)
        assert plan.vector_stages is None
        matcher.count(case.query, prepared=plan)
        assert plan.vector_stages is not None
        assert plan.vector_stages[0] == 1
        # low threshold + dense workload: the core stage vectorizes
        assert plan.vector_stages[1] is True

    def test_auto_matches_off_bitwise(self):
        case = generate_case(1, 0, DENSE_SPEC)
        off = CFLMatch(case.data, vector_mode="off")
        auto = CFLMatch(case.data, vector_mode="auto", vector_breadth=1)
        o_stats, a_stats = SearchStats(), SearchStats()
        assert list(off.search(case.query, stats=o_stats)) == list(
            auto.search(case.query, stats=a_stats)
        )
        assert o_stats.to_dict() == a_stats.to_dict()


class TestBatchPool:
    def test_pool_counts_match_sequential(self):
        case = generate_case(0, 0, DENSE_SPEC)
        queries = batch_for(case, 0, extras=1)
        sequential = BatchMatcher(case.data).run(queries)
        pooled = BatchMatcher(case.data, workers=2).run(queries)
        assert [r.embeddings for r in pooled.results] == [
            r.embeddings for r in sequential.results
        ]
        assert pooled.workers == 2

    def test_pool_rejects_per_query_budgets(self):
        case = generate_case(0, 0, DENSE_SPEC)
        with pytest.raises(ValueError, match="workers=1"):
            BatchMatcher(case.data, workers=2).run(
                [case.query], time_limit_s=1.0
            )

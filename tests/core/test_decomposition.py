"""Unit tests for the CFL decomposition (Section 3)."""

import random

import pytest

from repro.core import cfl_decompose
from repro.graph import Graph, GraphError, random_connected_graph
from repro.workloads.paper_graphs import figure1_example, figure4_query


class TestPaperExamples:
    def test_figure4_decomposition(self):
        query, ids = figure4_query()
        d = cfl_decompose(query)
        assert sorted(d.core) == sorted(ids[n] for n in ("u0", "u1", "u2"))
        assert sorted(d.forest) == sorted(ids[n] for n in ("u3", "u4", "u5", "u6"))
        assert sorted(d.leaves) == sorted(ids[n] for n in ("u7", "u8", "u9", "u10"))
        assert not d.is_tree_query

    def test_figure4_forest_trees(self):
        query, ids = figure4_query()
        d = cfl_decompose(query)
        assert len(d.trees) == 2
        by_connection = {t.connection: t for t in d.trees}
        tree1 = by_connection[ids["u1"]]
        assert set(tree1.vertices) == {ids["u3"], ids["u4"], ids["u7"], ids["u8"]}
        tree2 = by_connection[ids["u2"]]
        assert set(tree2.vertices) == {ids["u5"], ids["u6"], ids["u9"], ids["u10"]}
        # parents follow the tree structure
        assert tree1.parent[ids["u7"]] == ids["u3"]
        assert tree2.parent[ids["u10"]] == ids["u6"]

    def test_figure1_decomposition(self):
        example = figure1_example(5, 5)
        d = cfl_decompose(example.query)
        q = example.q
        assert sorted(d.core) == sorted([q("u1"), q("u2"), q("u5")])
        assert d.forest == [q("u3")]
        assert sorted(d.leaves) == sorted([q("u4"), q("u6")])


class TestPartitionInvariants:
    def test_sets_partition_vertices(self, rng):
        for _ in range(40):
            query = random_connected_graph(rng.randrange(1, 25), rng.randrange(0, 12), 3, rng)
            d = cfl_decompose(query)
            combined = sorted(d.core + d.forest + d.leaves)
            assert combined == list(query.vertices())

    def test_leaves_are_degree_one(self, rng):
        for _ in range(40):
            query = random_connected_graph(rng.randrange(2, 25), rng.randrange(0, 12), 3, rng)
            d = cfl_decompose(query)
            for u in d.leaves:
                assert query.degree(u) == 1

    def test_core_is_two_core_when_nonempty(self, rng):
        for _ in range(40):
            query = random_connected_graph(rng.randrange(3, 25), rng.randrange(2, 12), 3, rng)
            d = cfl_decompose(query)
            if d.is_tree_query:
                continue
            core = set(d.core)
            for u in core:
                assert sum(1 for w in query.neighbors(u) if w in core) >= 2

    def test_each_tree_touches_core_once(self, rng):
        for _ in range(30):
            query = random_connected_graph(rng.randrange(3, 25), rng.randrange(0, 8), 3, rng)
            d = cfl_decompose(query)
            core = d.core_set
            for tree in d.trees:
                assert tree.connection in core
                assert not set(tree.vertices) & core


class TestTreeQueries:
    def test_tree_query_core_is_single_root(self):
        query = Graph([0, 1, 2, 3], [(0, 1), (1, 2), (1, 3)])
        d = cfl_decompose(query)
        assert d.is_tree_query
        assert d.core == [1]  # max-degree default chooser

    def test_explicit_tree_root(self):
        query = Graph([0, 1, 2, 3], [(0, 1), (1, 2), (1, 3)])
        d = cfl_decompose(query, tree_root=0)
        assert d.core == [0]

    def test_root_chooser_callback(self):
        query = Graph([0, 1, 2], [(0, 1), (1, 2)])
        d = cfl_decompose(query, root_chooser=lambda q: 2)
        assert d.core == [2]

    def test_single_vertex_query(self):
        d = cfl_decompose(Graph([3], []))
        assert d.core == [0]
        assert d.forest == []
        assert d.leaves == []

    def test_single_edge_query(self):
        d = cfl_decompose(Graph([0, 1], [(0, 1)]), tree_root=0)
        assert d.core == [0]
        assert d.leaves == [1]
        assert d.forest == []

    def test_path_query_middle_is_forest(self):
        # path 0-1-2: root at 1, both ends are leaves
        d = cfl_decompose(Graph([0, 1, 0], [(0, 1), (1, 2)]), tree_root=1)
        assert d.core == [1]
        assert sorted(d.leaves) == [0, 2]


class TestErrors:
    def test_empty_query_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            cfl_decompose(Graph([], []))

    def test_disconnected_query_rejected(self):
        with pytest.raises(GraphError, match="connected"):
            cfl_decompose(Graph([0, 0, 0], [(0, 1)]))

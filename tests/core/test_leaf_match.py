"""Unit tests for Leaf-Match (Section 4.4)."""

from math import factorial

from repro.core import (
    build_cpi,
    build_leaf_plan,
    cfl_decompose,
    count_leaf_matches,
    enumerate_leaf_matches,
)
from repro.graph import Graph
from repro.workloads.paper_graphs import figure4_query


def _prepare_figure4_style(num_per_label=2):
    """Query: core edge (0,1) is replaced by a simple star — center 0 with
    leaves of two labels; data gives each leaf group candidates."""
    # query: center (label 0), two leaves label 1, one leaf label 2
    query = Graph([0, 1, 1, 2], [(0, 1), (0, 2), (0, 3)])
    # data: center v0, three label-1 neighbors, two label-2 neighbors
    data = Graph(
        [0, 1, 1, 1, 2, 2],
        [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)],
    )
    return query, data


class TestLeafPlan:
    def test_figure4_label_classes(self):
        """Section 4.4: S_G = {u8, u9}, S_F = {u7, u10}."""
        query, ids = figure4_query()
        d = cfl_decompose(query)
        cpi = build_cpi(query, query, 0)  # data graph irrelevant for the plan
        plan = build_leaf_plan(cpi, d.leaves)
        classes = [
            sorted(u for nec in cls for u in nec.members) for cls in plan.classes
        ]
        assert sorted(map(tuple, classes)) == sorted(
            [
                (ids["u7"], ids["u10"]),
                (ids["u8"], ids["u9"]),
            ]
        )

    def test_same_parent_same_label_merge_into_nec(self):
        query = Graph([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        cpi = build_cpi(query, query, 0)
        plan = build_leaf_plan(cpi, [1, 2, 3])
        assert len(plan.classes) == 1
        necs = plan.classes[0]
        assert len(necs) == 1
        assert necs[0].members == (1, 2, 3)

    def test_different_parents_stay_separate_necs(self):
        # path 1-0-2 with two label-1 leaves on different parents
        query = Graph([0, 0, 1, 1], [(0, 1), (0, 2), (1, 3)])
        cpi = build_cpi(query, query, 0)
        plan = build_leaf_plan(cpi, [2, 3])
        assert len(plan.classes) == 1
        assert len(plan.classes[0]) == 2

    def test_empty_plan(self):
        query = Graph([0], [])
        cpi = build_cpi(query, query, 0)
        plan = build_leaf_plan(cpi, [])
        assert plan.classes == ()


class TestEnumerateAndCount:
    def _run(self, query, data):
        d = cfl_decompose(query, tree_root=0)
        cpi = build_cpi(query, data, 0)
        plan = build_leaf_plan(cpi, d.leaves)
        mapping = [-1] * query.num_vertices
        used = bytearray(data.num_vertices)
        mapping[0] = 0
        used[0] = 1
        enumerated = []
        for _ in enumerate_leaf_matches(cpi, plan, mapping, used):
            enumerated.append(tuple(mapping))
        count = count_leaf_matches(cpi, plan, mapping, used)
        return enumerated, count

    def test_count_equals_enumeration(self):
        query, data = _prepare_figure4_style()
        enumerated, count = self._run(query, data)
        assert len(enumerated) == len(set(enumerated)) == count
        # 3 choices x 2 choices for the label-1 NEC pair, 2 for label-2 leaf
        assert count == 3 * 2 * 2

    def test_nec_permutations_expanded(self):
        query = Graph([0, 1, 1], [(0, 1), (0, 2)])
        data = Graph([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        enumerated, count = self._run(query, data)
        assert count == 6  # P(3, 2)
        images = {(m[1], m[2]) for m in enumerated}
        assert len(images) == 6
        assert all(a != b for a, b in images)

    def test_injectivity_within_label_class_across_necs(self):
        # two label-1 leaves under different parents sharing one candidate
        query = Graph([0, 0, 1, 1], [(0, 1), (0, 2), (1, 3)])
        data = Graph([0, 0, 1], [(0, 1), (0, 2), (1, 2)])
        d = cfl_decompose(query, tree_root=0)
        cpi = build_cpi(query, data, 0)
        plan = build_leaf_plan(cpi, d.leaves)
        mapping = [0, 1, -1, -1]
        used = bytearray(data.num_vertices)
        used[0] = used[1] = 1
        results = [tuple(mapping) for _ in enumerate_leaf_matches(cpi, plan, mapping, used)]
        # both leaves can only map to v2 -> conflict -> no assignment
        assert results == []
        assert count_leaf_matches(cpi, plan, mapping, used) == 0

    def test_used_vertices_excluded(self):
        query, data = _prepare_figure4_style()
        d = cfl_decompose(query, tree_root=0)
        cpi = build_cpi(query, data, 0)
        plan = build_leaf_plan(cpi, d.leaves)
        mapping = [0, -1, -1, -1]
        used = bytearray(data.num_vertices)
        used[0] = 1
        used[1] = 1  # one label-1 candidate already consumed
        count = count_leaf_matches(cpi, plan, mapping, used)
        assert count == 2 * 1 * 2  # P(2,2) x 2

    def test_cap_stops_early(self):
        query = Graph([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        data = Graph([0] + [1] * 7, [(0, i) for i in range(1, 8)])
        d = cfl_decompose(query, tree_root=0)
        cpi = build_cpi(query, data, 0)
        plan = build_leaf_plan(cpi, d.leaves)
        mapping = [0, -1, -1, -1]
        used = bytearray(data.num_vertices)
        used[0] = 1
        full = count_leaf_matches(cpi, plan, mapping, used)
        assert full == 7 * 6 * 5
        capped = count_leaf_matches(cpi, plan, mapping, used, cap=10)
        assert 10 <= capped <= full

    def test_nec_factorial_in_count(self):
        query = Graph([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        data = Graph([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        d = cfl_decompose(query, tree_root=0)
        cpi = build_cpi(query, data, 0)
        plan = build_leaf_plan(cpi, d.leaves)
        mapping = [0, -1, -1, -1]
        used = bytearray(4)
        used[0] = 1
        assert count_leaf_matches(cpi, plan, mapping, used) == factorial(3)

    def test_infeasible_nec_fails_fast(self):
        query = Graph([0, 1, 1], [(0, 1), (0, 2)])
        data = Graph([0, 1], [(0, 1)])  # only one label-1 candidate for 2 leaves
        d = cfl_decompose(query, tree_root=0)
        cpi = build_cpi(query, data, 0)
        plan = build_leaf_plan(cpi, d.leaves)
        mapping = [0, -1, -1]
        used = bytearray(2)
        used[0] = 1
        assert list(enumerate_leaf_matches(cpi, plan, mapping, used)) == []
        assert count_leaf_matches(cpi, plan, mapping, used) == 0

    def test_state_restored_after_enumeration(self):
        query, data = _prepare_figure4_style()
        d = cfl_decompose(query, tree_root=0)
        cpi = build_cpi(query, data, 0)
        plan = build_leaf_plan(cpi, d.leaves)
        mapping = [0, -1, -1, -1]
        used = bytearray(data.num_vertices)
        used[0] = 1
        for _ in enumerate_leaf_matches(cpi, plan, mapping, used):
            pass
        assert mapping == [0, -1, -1, -1]
        assert used[1:] == bytearray(data.num_vertices - 1)

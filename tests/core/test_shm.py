"""Differential and lifecycle tests for the shared-memory graph store.

Three backings of the *same* data graph must be observationally
identical: the in-process :class:`Graph`, the shared-memory
:class:`SharedGraphStore`, and the mmap'd ``cfl-match ingest`` file.
The sweep runs every ``repro.testing`` fuzz scenario through all three
— embeddings, enumeration order, and every ``SearchStats`` counter
bit-identical — sequentially and at ``workers=4`` under both start
methods.

The lifecycle half asserts the deterministic segment discipline: pool
shutdown, worker errors, mid-stream cancellation, KeyboardInterrupt,
and even a SIGKILLed attacher leave zero orphaned ``/dev/shm``
segments and zero ``resource_tracker`` warnings.
"""

import glob
import multiprocessing
import os
import signal
import subprocess
import sys
from array import array
from collections import Counter
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro.core.parallel
from repro.core import CFLMatch
from repro.core.parallel import (
    MatcherPool,
    parallel_count,
    parallel_search,
    parallel_search_iter,
)
from repro.core.shm import (
    GRAPH_SECTION_NAMES,
    KIND_GRAPH,
    MAGIC_BYTES,
    PlanSegment,
    SEGMENT_PREFIX,
    SharedGraph,
    SharedGraphStore,
    attach_graph_store,
    attach_plan_segment,
    graph_sections,
    open_graph_file,
    pack_segment,
    read_segment,
    section_sizes,
    segment_nbytes,
)
from repro.core.stats import SearchStats, aggregate_stage_stats
from repro.graph import Graph, load_graph, save_graph
from repro.graph.graph import GraphError
from repro.graph.ingest import ingest_graph, load_graph_csr, write_graph_csr
from repro.testing import SCENARIOS, WorkloadSpec, generate_case, generate_cases
from repro.workloads.paper_graphs import figure1_example
from tests.conftest import random_instance

FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not FORK, reason="fork start method unavailable")
SHM_DIR = Path("/dev/shm")
REPO_ROOT = Path(__file__).resolve().parents[2]
SWEEP_SEED = 2016
#: spawn pools cost ~1s each on small machines, so the spawn sweep picks
#: one backing per scenario (rotating) instead of the full cross product;
#: CI's smoke job runs the full fork x spawn matrix on top.
SPAWN_SCENARIOS = ("dense", "nec-heavy", "twins")


def _segments() -> set:
    if not SHM_DIR.is_dir():  # pragma: no cover - non-tmpfs platforms
        return set()
    return set(glob.glob(str(SHM_DIR / f"{SEGMENT_PREFIX}*")))


def _dense_case():
    """A fuzz case with several root candidates, so the parallel engine
    actually dispatches chunks instead of falling back inline (the
    figure-1 example has exactly one root and never exercises a pool)."""
    return generate_case(11, 1, WorkloadSpec(scenarios=("dense",)))


def _boom(args):
    raise RuntimeError("injected worker failure")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must leave ``/dev/shm`` as it found it."""
    before = _segments()
    yield
    leaked = _segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@contextmanager
def _variants(data: Graph, tmp_path: Path):
    """The three observationally-equivalent backings of ``data``."""
    csr_path = tmp_path / "data.csr"
    write_graph_csr(data, csr_path)
    with SharedGraphStore.create(data) as store:
        file_store = open_graph_file(csr_path)
        try:
            yield [("inproc", data), ("shm", store.graph), ("file", file_store.graph)]
        finally:
            file_store.close()


def _sequential_run(graph: Graph, query: Graph):
    """(embeddings in order, counters, count) for one backing.

    Counters fold per-stage stats exactly like the worker tasks do, so
    they are directly comparable with parallel-run aggregates."""
    matcher = CFLMatch(graph)
    plan = matcher.prepare(query, use_cache=False)
    stats = SearchStats()
    stage_stats: dict = {}
    embeddings = list(
        matcher.search(query, prepared=plan, stats=stats, stage_stats=stage_stats)
    )
    aggregate_stage_stats(stage_stats, into=stats)
    return embeddings, stats.to_dict(), matcher.count(query)


class TestDifferentialSequential:
    """Every fuzz scenario, all three backings, exact order + counters."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_three_backings_bit_identical(self, scenario, tmp_path):
        for case in generate_cases(SWEEP_SEED, 3, WorkloadSpec(scenarios=(scenario,))):
            if scenario == "disconnected-query":
                # prepare() rejects these identically on every backing
                with _variants(case.data, tmp_path) as variants:
                    for name, graph in variants:
                        with pytest.raises(GraphError):
                            CFLMatch(graph).prepare(case.query)
                continue
            baseline = None
            with _variants(case.data, tmp_path) as variants:
                for name, graph in variants:
                    got = _sequential_run(graph, case.query)
                    if baseline is None:
                        baseline = got
                    else:
                        assert got == baseline, (name, case.describe())

    def test_plan_segment_round_trip_matches(self):
        """Search through an attached plan segment must replay the exact
        embeddings and counters of the plan it encodes."""
        for case in generate_cases(
            SWEEP_SEED, 4, WorkloadSpec(scenarios=("dense", "nec-heavy"))
        ):
            with SharedGraphStore.create(case.data) as store:
                matcher = CFLMatch(store.graph)
                plan = matcher.prepare(case.query, use_cache=False)
                base_stats = SearchStats()
                base = list(matcher.search(case.query, prepared=plan, stats=base_stats))
                segment = PlanSegment.create(plan)
                try:
                    attacher = CFLMatch(store.graph)
                    decoded, attached = attach_plan_segment(attacher, segment.name)
                    got_stats = SearchStats()
                    got = list(
                        attacher.search(decoded.query, prepared=decoded, stats=got_stats)
                    )
                    assert got == base, case.describe()
                    assert got_stats.to_dict() == base_stats.to_dict()
                    assert decoded.phase_times["segment_attach"] > 0.0
                    attached.close()
                finally:
                    segment.unlink()
                    segment.close()


class TestDifferentialParallel:
    """workers=4 across the backings: multiset + exact counter equality
    (enumeration work is partitioned by root candidate, so worker-merged
    counters equal the sequential run's when no limit truncates)."""

    @needs_fork
    @pytest.mark.parametrize("scenario", sorted(set(SCENARIOS) - {"disconnected-query"}))
    def test_fork_matches_sequential_on_all_backings(self, scenario, tmp_path):
        case = generate_case(SWEEP_SEED, 1, WorkloadSpec(scenarios=(scenario,)))
        base_emb, base_counters, base_count = _sequential_run(case.data, case.query)
        with _variants(case.data, tmp_path) as variants:
            for name, graph in variants:
                stats = SearchStats()
                got = parallel_search(
                    graph, case.query, workers=4, start_method="fork", stats=stats
                )
                assert Counter(got) == Counter(base_emb), (name, case.describe())
                assert stats.to_dict() == base_counters, (name, case.describe())
                assert (
                    parallel_count(graph, case.query, workers=4, start_method="fork")
                    == base_count
                ), (name, case.describe())

    @pytest.mark.parametrize(
        "scenario,backing", zip(SPAWN_SCENARIOS, ("inproc", "shm", "file"))
    )
    def test_spawn_matches_sequential(self, scenario, backing, tmp_path):
        """Spawn workers inherit nothing: they attach the store and the
        plan segment by name, making this the zero-copy path's real
        differential."""
        case = generate_case(SWEEP_SEED, 1, WorkloadSpec(scenarios=(scenario,)))
        base_emb, base_counters, _ = _sequential_run(case.data, case.query)
        with _variants(case.data, tmp_path) as variants:
            graph = dict(variants)[backing]
            stats = SearchStats()
            got = parallel_search(
                graph, case.query, workers=4, start_method="spawn", stats=stats
            )
            assert Counter(got) == Counter(base_emb), case.describe()
            assert stats.to_dict() == base_counters, case.describe()

    @needs_fork
    def test_matcher_pool_differential_both_methods(self):
        case = _dense_case()
        base_emb, base_counters, base_count = _sequential_run(case.data, case.query)
        for method in ("fork", "spawn"):
            with MatcherPool(case.data, workers=4, start_method=method) as pool:
                stats = SearchStats()
                got = pool.search(case.query, stats=stats)
                assert Counter(got) == Counter(base_emb), method
                assert stats.to_dict() == base_counters, method
                assert pool.count(case.query) == base_count, method


class TestSharedGraphStore:
    def test_graph_equality_and_signature(self, rng):
        for _ in range(5):
            data, _ = random_instance(rng)
            with SharedGraphStore.create(data) as store:
                shared = store.graph
                assert shared == data and data == shared
                assert shared.signature() == data.signature()
                assert shared.materialize() == data
                assert list(shared.labels) == list(data.labels)
                assert [list(r) for r in shared.adj] == [list(r) for r in data.adj]
                assert set(shared.label_index()) == set(data.label_index())
                for v in data.vertices():
                    assert shared.nlf(v) == data.nlf(v)
                    assert shared.mnd(v) == data.mnd(v)

    def test_rows_are_read_only_zero_copy_views(self):
        ex = figure1_example(6, 6)
        with SharedGraphStore.create(ex.data) as store:
            indptr, flat = store.graph.shared_data_csr()
            assert isinstance(indptr, memoryview) and isinstance(flat, memoryview)
            assert indptr.readonly and flat.readonly
            with pytest.raises(TypeError):
                flat[0] = 99

    def test_attach_by_name_and_unlink_semantics(self):
        ex = figure1_example(5, 5)
        store = SharedGraphStore.create(ex.data)
        try:
            handle = store.worker_handle()
            assert handle is not None and handle[0] == "shm"
            attached = attach_graph_store(handle)
            assert attached.graph == store.graph
            store.unlink()
            # POSIX: the attached mapping stays valid after unlink...
            assert attached.graph.num_vertices == ex.data.num_vertices
            attached.close()
            # ...but new attaches fail deterministically.
            with pytest.raises(FileNotFoundError):
                attach_graph_store(handle)
        finally:
            store.unlink()
            store.close()

    def test_attacher_cannot_unlink(self):
        ex = figure1_example(4, 4)
        with SharedGraphStore.create(ex.data) as store:
            attached = attach_graph_store(store.worker_handle())
            attached.unlink()  # non-owner: must be a no-op
            attached.close()
            again = attach_graph_store(store.worker_handle())
            assert again.graph == store.graph
            again.close()

    def test_create_with_explicit_name(self):
        ex = figure1_example(3, 3)
        name = f"{SEGMENT_PREFIX}explicit-test"
        with SharedGraphStore.create(ex.data, name=name) as store:
            assert store.name == name
            attached = attach_graph_store(("shm", name))
            assert attached.graph == store.graph
            attached.close()


class TestSegmentLayout:
    def test_pack_read_round_trip(self):
        sections = [array("i", [1, 2, 3]), array("i"), array("i", [7])]
        buffer = bytearray(segment_nbytes(sections))
        pack_segment(buffer, KIND_GRAPH, sections)
        kind, views = read_segment(buffer)
        assert kind == KIND_GRAPH
        assert [list(v) for v in views] == [[1, 2, 3], [], [7]]

    def test_section_sizes_account_for_every_byte(self):
        ex = figure1_example(8, 8)
        sections = graph_sections(ex.data)
        buffer = bytearray(segment_nbytes(sections))
        pack_segment(buffer, KIND_GRAPH, sections)
        sizes = section_sizes(buffer)
        assert set(sizes) == {"header", *GRAPH_SECTION_NAMES}
        assert sum(sizes.values()) == len(buffer)

    def test_bad_magic_and_truncation_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            read_segment(b"\x00" * 32)
        sections = [array("i", [1, 2, 3])]
        buffer = bytearray(segment_nbytes(sections))
        pack_segment(buffer, KIND_GRAPH, sections)
        with pytest.raises(ValueError, match="too small"):
            read_segment(bytes(buffer[:12]))
        with pytest.raises(ValueError, match="out of bounds"):
            read_segment(bytes(buffer[:-4]))

    def test_undersized_buffer_rejected(self):
        sections = [array("i", [1, 2, 3])]
        with pytest.raises(ValueError, match="words"):
            pack_segment(bytearray(8), KIND_GRAPH, sections)


class TestIngest:
    def test_round_trip_equality(self, tmp_path, rng):
        for index in range(5):
            data, _ = random_instance(rng)
            path = tmp_path / f"g{index}.csr"
            report = write_graph_csr(data, path)
            loaded = load_graph_csr(path)
            assert loaded == data and data == loaded
            assert loaded.signature() == data.signature()
            assert list(loaded.labels) == list(data.labels)
            assert report.total_bytes == path.stat().st_size
            assert sum(report.section_bytes.values()) == report.total_bytes

    def test_load_graph_sniffs_binary_by_magic(self, tmp_path):
        ex = figure1_example(7, 7)
        text_path = tmp_path / "data.graph"
        save_graph(ex.data, text_path)
        # extension is deliberately text-like: detection is content-based
        bin_path = tmp_path / "data2.graph"
        ingest_graph(text_path, bin_path)
        assert bin_path.read_bytes()[:4] == MAGIC_BYTES
        loaded = load_graph(bin_path)
        assert isinstance(loaded, SharedGraph)
        assert loaded == load_graph(text_path)

    def test_ingested_file_reingestable(self, tmp_path):
        ex = figure1_example(5, 5)
        first = tmp_path / "a.csr"
        second = tmp_path / "b.csr"
        write_graph_csr(ex.data, first)
        ingest_graph(first, second)
        assert first.read_bytes() == second.read_bytes()

    def test_wrong_kind_rejected(self, tmp_path):
        ex = figure1_example(4, 4)
        matcher = CFLMatch(ex.data)
        plan = matcher.prepare(ex.query)
        segment = PlanSegment.create(plan)
        try:
            bogus = tmp_path / "plan.csr"
            bogus.write_bytes(bytes(segment.buffer))
            with pytest.raises(GraphError, match="not an ingested graph"):
                open_graph_file(bogus)
        finally:
            segment.unlink()
            segment.close()

    def test_report_renders_size_table(self, tmp_path):
        ex = figure1_example(6, 6)
        report = write_graph_csr(ex.data, tmp_path / "g.csr")
        rendered = report.render()
        for name in GRAPH_SECTION_NAMES:
            assert name in rendered
        assert str(report.total_bytes) in rendered

    def test_cli_ingest_and_count(self, tmp_path, capsys):
        from repro.cli import main

        ex = figure1_example(10, 10)
        text_path = tmp_path / "data.graph"
        query_path = tmp_path / "query.graph"
        csr_path = tmp_path / "data.csr"
        save_graph(ex.data, text_path)
        save_graph(ex.query, query_path)
        assert main(["ingest", str(text_path), str(csr_path)]) == 0
        out = capsys.readouterr().out
        assert "adj_flat" in out
        assert main(["count", "--data", str(csr_path), "--query", str(query_path)]) == 0
        assert capsys.readouterr().out.startswith("10 embedding(s)")


class TestSegmentLifecycle:
    def test_pool_shutdown_unlinks_everything(self):
        case = _dense_case()
        expected = CFLMatch(case.data).count(case.query)
        before = _segments()
        pool = MatcherPool(case.data, workers=2)
        assert pool.count(case.query) == expected
        if SHM_DIR.is_dir():
            # the store and the query's plan segment live here right now
            assert len(_segments() - before) == 2
        pool.close()
        assert _segments() == before

    def test_pool_does_not_unlink_foreign_store(self):
        case = _dense_case()
        expected = CFLMatch(case.data).count(case.query)
        with SharedGraphStore.create(case.data) as store:
            with MatcherPool(store.graph, workers=2) as pool:
                assert pool.count(case.query) == expected
            # pool reused the caller's store: still attachable after close
            attached = attach_graph_store(store.worker_handle())
            assert attached.graph == store.graph
            attached.close()

    @needs_fork
    def test_worker_error_propagates_and_cleans_up(self, monkeypatch):
        case = _dense_case()
        before = _segments()
        # fork workers inherit the patched module, so every chunk raises
        monkeypatch.setattr(repro.core.parallel, "_pool_count_task", _boom)
        with pytest.raises(RuntimeError, match="injected worker failure"):
            with MatcherPool(case.data, workers=2, start_method="fork") as pool:
                pool.count(case.query)
        assert _segments() == before

    def test_midstream_abandon_releases_segments(self):
        case = _dense_case()
        before = _segments()
        stream = parallel_search_iter(case.data, case.query, workers=2)
        assert isinstance(next(stream), tuple)
        stream.close()  # abandon mid-enumeration
        assert _segments() == before

    def test_keyboard_interrupt_mid_stream_releases_segments(self):
        case = _dense_case()
        before = _segments()
        stream = parallel_search_iter(case.data, case.query, workers=2)
        next(stream)
        with pytest.raises(KeyboardInterrupt):
            stream.throw(KeyboardInterrupt)
        assert _segments() == before

    def test_matcher_pool_midstream_abandon_stays_usable(self):
        case = _dense_case()
        expected = CFLMatch(case.data).count(case.query)
        assert expected > 2
        with MatcherPool(case.data, workers=2) as pool:
            got = list(pool.search_iter(case.query, limit=2))
            assert len(got) == 2
            assert pool.count(case.query) == expected  # cancel cleared per query

    def test_plan_segment_lru_eviction_unlinks(self):
        """Distinct queries beyond the plan-cache capacity must not
        accumulate plan segments."""
        case = _dense_case()
        n = case.query.num_vertices
        rotate = [(i + 1) % n for i in range(n)]
        twisted = Graph(
            [case.query.label(rotate.index(v)) for v in range(n)],
            [(rotate[u], rotate[v]) for u, v in case.query.edges()],
        )
        assert twisted.signature() != case.query.signature()
        expected = CFLMatch(case.data).count(case.query)
        before = _segments()
        with MatcherPool(case.data, workers=2, plan_cache_size=1) as pool:
            assert pool.count(case.query) == expected
            assert pool.count(twisted) == expected  # isomorphic relabeling
            if SHM_DIR.is_dir():
                # store + exactly one live plan segment (first one evicted)
                assert len(_segments() - before) == 2
        assert _segments() == before

    @pytest.mark.skipif(not SHM_DIR.is_dir(), reason="/dev/shm unavailable")
    def test_sigkilled_attacher_leaves_no_orphans(self):
        """A hard-killed attacher must not leak: attachers never own the
        name, so the creator's unlink still removes it."""
        ex = figure1_example(10, 10)
        store = SharedGraphStore.create(ex.data)
        try:
            matcher = CFLMatch(store.graph)
            plan = matcher.prepare(ex.query)
            segment = PlanSegment.create(plan)
            try:
                code = (
                    "import time\n"
                    "from repro.core import CFLMatch\n"
                    "from repro.core.shm import attach_graph_store, attach_plan_segment\n"
                    f"store = attach_graph_store(('shm', {store.name!r}))\n"
                    "matcher = CFLMatch(store.graph)\n"
                    f"plan, seg = attach_plan_segment(matcher, {segment.name!r})\n"
                    "print('attached', flush=True)\n"
                    "time.sleep(30)\n"
                )
                proc = subprocess.Popen(
                    [sys.executable, "-c", code],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    env={**os.environ, "PYTHONPATH": "src"},
                    cwd=str(REPO_ROOT),
                    text=True,
                )
                assert proc.stdout is not None
                assert proc.stdout.readline().strip() == "attached"
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
            finally:
                segment.unlink()
                segment.close()
        finally:
            store.unlink()
            store.close()

    def test_no_resource_tracker_warnings_in_subprocess(self):
        """A full create/attach/search/close cycle in a fresh interpreter
        must produce *zero* stderr output — no resource_tracker 'leaked
        shared_memory objects' warnings, no KeyError tracebacks from
        double-unregistration, no BufferError finalizer noise."""
        code = (
            "from repro.core.parallel import MatcherPool, parallel_search\n"
            "from repro.testing import WorkloadSpec, generate_case\n"
            "case = generate_case(11, 1, WorkloadSpec(scenarios=('dense',)))\n"
            "expected = len(parallel_search(case.data, case.query, workers=2))\n"
            "with MatcherPool(case.data, workers=2) as pool:\n"
            "    assert pool.count(case.query) <= expected\n"
            "    assert len(pool.search(case.query)) == expected\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(REPO_ROOT),
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert result.stderr == ""

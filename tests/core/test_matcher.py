"""Unit tests for the CFLMatch façade and its variants."""

import time

import pytest

from repro.core import CFLMatch, count_embeddings, find_embeddings, validate_embedding
from repro.graph import Graph, GraphError
from repro.workloads.paper_graphs import figure1_example, figure3_example
from tests.conftest import nx_monomorphisms, random_instance


class TestPaperExamples:
    def test_figure3_three_embeddings(self):
        ex = figure3_example()
        embeddings = set(find_embeddings(ex.query, ex.data))
        expected = {
            tuple(ex.v(n) for n in names)
            for names in (
                ("v0", "v2", "v1", "v5", "v4"),
                ("v0", "v2", "v1", "v5", "v6"),
                ("v0", "v2", "v3", "v5", "v6"),
            )
        }
        assert embeddings == expected

    def test_figure1_hundred_embeddings(self):
        ex = figure1_example(100, 1000)
        assert count_embeddings(ex.query, ex.data) == 100

    def test_figure1_macro_order(self):
        """Core first, forest second, leaves last (Section 3)."""
        ex = figure1_example(10, 10)
        matcher = CFLMatch(ex.data)
        prepared = matcher.prepare(ex.query)
        core = set(prepared.decomposition.core)
        order = prepared.matching_order
        assert set(order[: len(core)]) == core
        assert prepared.forest_order == [ex.q("u3")]
        assert set(prepared.leaf_plan.leaf_vertices) == {ex.q("u4"), ex.q("u6")}


class TestVariantsAgree:
    @pytest.mark.parametrize("mode", ["cfl", "cf", "match"])
    @pytest.mark.parametrize("cpi_mode", ["full", "td", "naive"])
    def test_all_variants_match_oracle(self, rng, mode, cpi_mode):
        for _ in range(8):
            data, query = random_instance(rng)
            got = set(CFLMatch(data, mode=mode, cpi_mode=cpi_mode).search(query))
            assert got == nx_monomorphisms(query, data)

    def test_count_matches_enumeration(self, rng):
        for _ in range(20):
            data, query = random_instance(rng)
            matcher = CFLMatch(data)
            assert matcher.count(query) == len(list(matcher.search(query)))


class TestLimits:
    def test_limit_caps_results(self):
        ex = figure1_example(50, 50)
        results = list(CFLMatch(ex.data).search(ex.query, limit=7))
        assert len(results) == 7

    def test_limit_zero(self):
        ex = figure3_example()
        assert list(CFLMatch(ex.data).search(ex.query, limit=0)) == []

    def test_count_with_limit_saturates(self):
        ex = figure1_example(50, 50)
        assert CFLMatch(ex.data).count(ex.query, limit=5) == 5

    def test_limited_results_are_valid(self):
        ex = figure1_example(30, 30)
        for emb in CFLMatch(ex.data).search(ex.query, limit=10):
            assert validate_embedding(ex.query, ex.data, emb)


class TestRun:
    def test_report_fields(self):
        ex = figure3_example()
        report = CFLMatch(ex.data).run(ex.query, collect=True)
        assert report.embeddings == 3
        assert report.results is not None and len(report.results) == 3
        assert report.ordering_time >= 0
        assert report.enumeration_time >= 0
        assert report.total_time == report.ordering_time + report.enumeration_time
        assert report.cpi_size > 0
        assert len(report.candidate_counts) == ex.query.num_vertices
        assert not report.timed_out

    def test_run_without_collect(self):
        ex = figure3_example()
        report = CFLMatch(ex.data).run(ex.query)
        assert report.results is None
        assert report.embeddings == 3

    def test_run_deadline_in_past_times_out(self):
        n = 13
        data = Graph([0] * n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        query = Graph([0] * 7, [(i, j) for i in range(7) for j in range(i + 1, 7)])
        report = CFLMatch(data).run(query, deadline=time.perf_counter())
        assert report.timed_out

    def test_stats_embeddings_counted(self):
        ex = figure3_example()
        report = CFLMatch(ex.data).run(ex.query)
        assert report.stats.embeddings == 3


class TestEdgeCases:
    def test_single_vertex_query(self):
        data = Graph([0, 0, 1], [(0, 1), (1, 2)])
        query = Graph([0], [])
        assert set(CFLMatch(data).search(query)) == {(0,), (1,)}

    def test_no_matching_labels(self):
        data = Graph([0, 0], [(0, 1)])
        query = Graph([5, 5], [(0, 1)])
        assert list(CFLMatch(data).search(query)) == []
        assert CFLMatch(data).count(query) == 0

    def test_query_larger_than_data(self):
        data = Graph([0, 0], [(0, 1)])
        query = Graph([0, 0, 0], [(0, 1), (1, 2)])
        assert list(CFLMatch(data).search(query)) == []

    def test_empty_query_rejected(self):
        data = Graph([0], [])
        with pytest.raises(GraphError):
            CFLMatch(data).prepare(Graph([], []))

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CFLMatch(Graph([0], []), mode="bogus")

    def test_invalid_cpi_mode_rejected(self):
        with pytest.raises(ValueError):
            CFLMatch(Graph([0], []), cpi_mode="bogus")

    def test_prepared_query_reuse(self):
        ex = figure3_example()
        matcher = CFLMatch(ex.data)
        prepared = matcher.prepare(ex.query)
        first = set(matcher.search(ex.query, prepared=prepared))
        second = set(matcher.search(ex.query, prepared=prepared))
        assert first == second
        assert len(first) == 3

    def test_same_label_clique(self):
        """All-identical labels: permutations of a clique."""
        data = Graph([0] * 4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        query = Graph([0] * 3, [(0, 1), (1, 2), (0, 2)])
        assert CFLMatch(data).count(query) == 4 * 3 * 2

"""Tests for per-stage (core/forest/leaf) search statistics."""

from repro.core import CFLMatch, SearchStats
from repro.workloads.paper_graphs import figure1_example, figure3_example


class TestStageNodes:
    def test_stages_partition_total(self):
        ex = figure1_example(10, 20)
        report = CFLMatch(ex.data).run(ex.query)
        assert report.stage_nodes is not None
        assert set(report.stage_nodes) == {"core", "forest", "leaf"}
        assert sum(report.stage_nodes.values()) == report.stats.nodes

    def test_figure1_core_prunes_fan(self):
        """Postponing works: the core stage only ever touches 3 vertices
        (u1, u2 and the single surviving u5 candidate) regardless of the
        fan size."""
        for fan in (20, 50, 100):
            ex = figure1_example(10, fan)
            report = CFLMatch(ex.data).run(ex.query)
            assert report.stage_nodes["core"] == 3

    def test_match_mode_has_no_forest_or_leaf_nodes(self):
        ex = figure3_example()
        report = CFLMatch(ex.data, mode="match").run(ex.query)
        assert report.stage_nodes["forest"] == 0
        assert report.stage_nodes["leaf"] == 0
        assert report.stage_nodes["core"] > 0

    def test_search_stage_stats_parameter(self):
        ex = figure3_example()
        matcher = CFLMatch(ex.data)
        stage_stats = {}
        results = list(matcher.search(ex.query, stage_stats=stage_stats))
        assert len(results) == 3
        assert isinstance(stage_stats["core"], SearchStats)
        assert stage_stats["core"].nodes > 0

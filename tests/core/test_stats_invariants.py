"""Stats-invariant suite: the observability counters obey the paper's
accounting identities.

Exact counters are asserted on the hand-checkable paper examples:

* Figure 3 (exactly three embeddings): matching the core cycle
  (u1, u2, u4, u3) materializes 5 partial matches, the single leaf u5
  adds one leaf expansion per embedding, and 3 dead ends backtrack.
* Figure 1 at reduced scale: after bottom-up refinement exactly one
  candidate survives for u5, so the core triangle (u1, u2, u5) costs 3
  expansions; each of the ``paths`` branch instances then costs one
  forest expansion (u3) and two leaf expansions (u4 and u6).

Fuzz cases check the structural identities every run must satisfy —
filter prunes sum to the candidates removed at each CPI stage,
expansions bound embeddings, stage expansions partition total nodes —
and the acceptance criterion that worker-aggregated counters reproduce
the sequential run exactly at ``workers=4``.
"""

import pytest

from repro.core import CFLMatch
from repro.core.parallel import parallel_run
from repro.core.stats import SearchStats
from repro.testing.workloads import (
    CONNECTED_QUERY_SCENARIOS,
    WorkloadSpec,
    generate_case,
)
from repro.workloads.paper_graphs import figure1_example, figure3_example

FUZZ_SPEC = WorkloadSpec(
    scenarios=CONNECTED_QUERY_SCENARIOS,
    data_vertices=(30, 80),
    query_vertices=(4, 7),
)


def fuzz_cases(count, seed=20160626):
    return [generate_case(seed, index, FUZZ_SPEC) for index in range(count)]


class TestExactPaperCounters:
    def test_figure3_counters(self):
        ex = figure3_example()
        report = CFLMatch(ex.data).run(ex.query, limit=None)
        assert report.embeddings == 3
        s = report.stats
        assert (s.core_expansions, s.forest_expansions, s.leaf_expansions) == (5, 0, 3)
        assert s.nodes == 8
        assert s.backtracks == 3
        b = report.build_stats
        assert b.cpi_candidates_final == 7
        assert b.cpi_edges_final == 7
        assert report.cpi_size == b.cpi_candidates_final + b.cpi_edges_final

    @pytest.mark.parametrize("paths,fan", [(20, 100), (7, 30)])
    def test_figure1_counters_scale_with_branch_count(self, paths, fan):
        ex = figure1_example(paths, fan)
        report = CFLMatch(ex.data).run(ex.query, limit=None)
        s = report.stats
        assert report.embeddings == paths
        assert s.core_expansions == 3
        assert s.forest_expansions == paths
        assert s.leaf_expansions == 2 * paths
        assert s.nodes == 3 * paths + 3
        assert s.backtracks == 2

    def test_counters_round_trip_and_cover_ten_plus(self):
        ex = figure3_example()
        report = CFLMatch(ex.data).run(ex.query, limit=None)
        counters = report.counters()
        assert len(counters) >= 10
        assert SearchStats.from_dict(counters).to_dict() == counters


class TestCounterIdentities:
    """Structural identities on fuzz workloads (no hand computation)."""

    def test_prunes_sum_to_candidates_removed(self):
        for case in fuzz_cases(8):
            report = CFLMatch(case.data).run(case.query, limit=None)
            b = report.build_stats
            removed_top_down = (
                b.filter_mnd_pruned
                + b.filter_nlf_pruned
                + b.filter_other_pruned
                + b.filter_snte_pruned
            )
            assert b.cpi_candidates_structural - removed_top_down == (
                b.cpi_candidates_topdown
            )
            assert b.cpi_candidates_topdown - b.refine_candidates_pruned == (
                b.cpi_candidates_final
            )
            assert report.cpi_size == b.cpi_candidates_final + b.cpi_edges_final

    def test_expansions_bound_embeddings(self):
        """Enumerating every embedding visits at least one node per
        embedding (count mode is exempt: NEC combination counting
        deliberately skips the permutations it multiplies out)."""
        for case in fuzz_cases(8):
            report = CFLMatch(case.data).run(case.query, limit=None)
            assert report.stats.expansions >= report.embeddings

    def test_stage_expansions_partition_nodes(self):
        for case in fuzz_cases(8):
            report = CFLMatch(case.data).run(case.query, limit=None)
            s = report.stats
            assert s.nodes == (
                s.core_expansions + s.forest_expansions + s.leaf_expansions
            )
            assert report.stage_nodes.get("core", 0) == s.core_expansions
            assert report.stage_nodes.get("forest", 0) == s.forest_expansions
            assert report.stage_nodes.get("leaf", 0) == s.leaf_expansions


class TestWorkerAggregationMatchesSequential:
    """Acceptance criterion: sequential counters equal the aggregate of
    per-worker counters at ``--workers 4`` on fuzz workloads."""

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_enumerate_mode(self, index):
        case = generate_case(7, index, FUZZ_SPEC)
        sequential = CFLMatch(case.data).run(case.query, limit=None)
        aggregated = parallel_run(case.data, case.query, workers=4, limit=None)
        assert aggregated.embeddings == sequential.embeddings
        assert aggregated.counters() == sequential.counters()
        assert aggregated.stage_nodes == sequential.stage_nodes

    def test_count_mode(self):
        case = generate_case(7, 3, FUZZ_SPEC)
        sequential = CFLMatch(case.data).run(case.query, limit=None, count_only=True)
        aggregated = parallel_run(
            case.data, case.query, workers=4, limit=None, count_only=True
        )
        assert aggregated.embeddings == sequential.embeddings
        assert aggregated.counters() == sequential.counters()

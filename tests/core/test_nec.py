"""Unit tests for NEC classes (TurboISO's query compression relation)."""

from repro.core import nec_classes, nec_reduction
from repro.graph import Graph


class TestNECClasses:
    def test_independent_type(self):
        """Two same-label leaves on the same parent merge."""
        g = Graph([0, 1, 1], [(0, 1), (0, 2)])
        classes = nec_classes(g)
        assert [sorted(c) for c in classes] == [[0], [1, 2]]

    def test_clique_type(self):
        """Adjacent twins with identical closed neighborhoods merge."""
        # triangle 1-2-3 all hanging off 0, labels equal
        g = Graph([0, 1, 1], [(0, 1), (0, 2), (1, 2)])
        classes = nec_classes(g)
        assert [sorted(c) for c in classes] == [[0], [1, 2]]

    def test_label_must_match(self):
        g = Graph([0, 1, 2], [(0, 1), (0, 2)])
        classes = nec_classes(g)
        assert all(len(c) == 1 for c in classes)

    def test_neighborhood_must_match(self):
        g = Graph([0, 1, 1, 0], [(0, 1), (0, 2), (2, 3)])
        classes = nec_classes(g)
        assert all(len(c) == 1 for c in classes)

    def test_restricted_vertex_pool(self):
        g = Graph([0, 1, 1], [(0, 1), (0, 2)])
        classes = nec_classes(g, vertices=[1, 2])
        assert [sorted(c) for c in classes] == [[1, 2]]

    def test_classes_partition_pool(self, rng):
        from repro.graph import random_connected_graph

        for _ in range(20):
            g = random_connected_graph(rng.randrange(2, 20), rng.randrange(0, 10), 2, rng)
            classes = nec_classes(g)
            flattened = sorted(v for cls in classes for v in cls)
            assert flattened == list(g.vertices())


class TestNECReduction:
    def test_reduction_counts_merged_vertices(self):
        g = Graph([0, 1, 1, 1], [(0, 1), (0, 2), (0, 3)])
        assert nec_reduction(g) == 2

    def test_incompressible_graph(self):
        g = Graph([0, 1, 2], [(0, 1), (1, 2)])
        assert nec_reduction(g) == 0

    def test_forest_structure_incompressible(self, rng):
        """Lemma 4.2: forest-set vertices never share label+neighborhood."""
        from repro.core import cfl_decompose
        from repro.graph import random_connected_graph

        for _ in range(30):
            q = random_connected_graph(rng.randrange(3, 20), rng.randrange(0, 8), 3, rng)
            d = cfl_decompose(q)
            if len(d.forest) < 2:
                continue
            for i, u in enumerate(d.forest):
                for w in d.forest[i + 1:]:
                    same_label = q.label(u) == q.label(w)
                    same_nbrs = set(q.neighbors(u)) == set(q.neighbors(w))
                    assert not (same_label and same_nbrs)

"""Budget and deadline edge cases: truncated runs return cleanly
flagged partial reports — never exceptions, never corrupt counters.

The work budget charges an expansion *before* recording it, so
``stats.nodes <= max_expansions`` holds at every truncation point,
including mid-leaf-enumeration where one NEC assignment charges several
expansions at once.
"""

import time

import pytest

from repro.core import CFLMatch
from repro.core.stats import BudgetExhausted, SearchStats, WorkBudget
from repro.workloads.paper_graphs import figure1_example, figure3_example


class TestWorkBudget:
    def test_zero_budget_charges_nothing(self):
        budget = WorkBudget(0)
        with pytest.raises(BudgetExhausted):
            budget.charge()

    def test_multi_unit_charge(self):
        budget = WorkBudget(3)
        budget.charge(3)
        with pytest.raises(BudgetExhausted):
            budget.charge()


class TestBudgetTruncation:
    def test_budget_zero_returns_flagged_empty_report(self):
        ex = figure3_example()
        report = CFLMatch(ex.data).run(ex.query, limit=None, max_expansions=0)
        assert report.budget_exhausted
        assert report.status == "budget_exhausted"
        assert report.embeddings == 0
        assert report.stats.nodes == 0
        # build counters are untouched by the enumeration budget
        assert report.build_stats.cpi_candidates_final == 7

    def test_budget_hit_mid_leaf_enumeration(self):
        """Figure 1 at (20, 100) costs 3 core + 20 forest + 40 leaf
        expansions; a budget of 30 dies inside the leaf stage."""
        ex = figure1_example(20, 100)
        report = CFLMatch(ex.data).run(ex.query, limit=None, max_expansions=30)
        assert report.budget_exhausted
        assert not report.timed_out
        assert report.stats.nodes <= 30
        assert report.stats.leaf_expansions > 0
        assert 0 < report.embeddings < 20

    def test_budget_hit_mid_leaf_count_mode(self):
        ex = figure1_example(20, 100)
        report = CFLMatch(ex.data).run(
            ex.query, limit=None, max_expansions=30, count_only=True
        )
        assert report.budget_exhausted
        assert report.stats.nodes <= 30

    @pytest.mark.parametrize("budget", [0, 1, 2, 3, 5, 7, 8, 100])
    def test_nodes_never_exceed_budget(self, budget):
        """Sweep every truncation point of the 8-node Figure 3 search."""
        ex = figure3_example()
        report = CFLMatch(ex.data).run(ex.query, limit=None, max_expansions=budget)
        assert report.stats.nodes <= budget
        if budget >= 8:
            assert report.status == "ok"
            assert report.embeddings == 3
            assert report.stats.nodes == 8
        else:
            assert report.status == "budget_exhausted"

    def test_truncated_counters_stay_coherent(self):
        ex = figure1_example(20, 100)
        report = CFLMatch(ex.data).run(ex.query, limit=None, max_expansions=25)
        s = report.stats
        assert s.nodes == s.core_expansions + s.forest_expansions + s.leaf_expansions
        counters = report.counters()
        assert SearchStats.from_dict(counters).to_dict() == counters
        assert all(v >= 0 for v in counters.values())


class TestDeadlineTruncation:
    def test_deadline_during_cpi_build(self):
        """An already-expired deadline fires inside CPI construction;
        the report is flagged and carries partial build counters."""
        ex = figure1_example(20, 100)
        report = CFLMatch(ex.data).run(
            ex.query, limit=None, deadline=time.perf_counter() - 1.0
        )
        assert report.timed_out
        assert report.status == "timed_out"
        assert report.embeddings == 0
        assert report.cpi_size == 0
        assert set(report.phase_times) == {
            "decomposition", "cpi_build", "cpi_repair", "ordering",
            "enumeration", "segment_attach",
        }
        counters = report.counters()
        assert SearchStats.from_dict(counters).to_dict() == counters

    def test_deadline_during_enumeration(self):
        """A deadline that survives the build but expires immediately
        after truncates enumeration cleanly (deadlines are polled every
        1024 nodes / 256 embeddings, so the instance must be big enough
        for a poll to happen)."""
        ex = figure1_example(600, 50)
        matcher = CFLMatch(ex.data)
        plan = matcher.prepare(ex.query, use_cache=False)
        report = matcher.run(
            ex.query, limit=None, prepared=plan,
            deadline=time.perf_counter() - 1.0,
        )
        assert report.timed_out
        assert not report.budget_exhausted
        assert report.embeddings < 600

    def test_generous_deadline_is_a_no_op(self):
        ex = figure3_example()
        report = CFLMatch(ex.data).run(
            ex.query, limit=None, deadline=time.perf_counter() + 3600.0
        )
        assert report.status == "ok"
        assert report.embeddings == 3

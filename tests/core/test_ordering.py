"""Unit tests for matching-order selection (Algorithm 2, Section 4.2.1)."""

import pytest

from repro.core import (
    build_cpi,
    cfl_decompose,
    estimate_tree_embeddings,
    order_structure,
    path_non_tree_weight,
    path_suffix_counts,
    subtree_paths,
    validate_matching_order,
)
from repro.graph import Graph, GraphError
from repro.workloads.paper_graphs import figure1_example
from tests.conftest import random_instance


def _full_vertex_set(graph):
    return set(graph.vertices())


class TestSubtreePaths:
    def test_paths_cover_all_vertices(self, rng):
        for _ in range(20):
            data, query = random_instance(rng)
            cpi = build_cpi(query, data, 0)
            paths = subtree_paths(cpi, 0, _full_vertex_set(query))
            covered = {v for path in paths for v in path}
            assert covered == _full_vertex_set(query)
            assert all(path[0] == 0 for path in paths)

    def test_singleton_subtree(self):
        data = Graph([0, 1], [(0, 1)])
        query = Graph([0, 1], [(0, 1)])
        cpi = build_cpi(query, data, 0)
        assert subtree_paths(cpi, 1, {1}) == [[1]]

    def test_start_outside_allowed_rejected(self):
        data = Graph([0, 1], [(0, 1)])
        query = Graph([0, 1], [(0, 1)])
        cpi = build_cpi(query, data, 0)
        with pytest.raises(GraphError):
            subtree_paths(cpi, 0, {1})


class TestPathSuffixCounts:
    def test_counts_match_brute_force(self, rng):
        """The DP equals explicit enumeration of CPI path embeddings."""
        for _ in range(20):
            data, query = random_instance(rng)
            cpi = build_cpi(query, data, 0)
            paths = subtree_paths(cpi, 0, _full_vertex_set(query))
            for path in paths:
                counts = path_suffix_counts(cpi, path)
                for start in range(len(path)):
                    assert counts[start] == self._brute_force(cpi, path[start:])

    @staticmethod
    def _brute_force(cpi, path):
        """Count chains v_0 -e- v_1 ... along the path inside the CPI."""
        total = 0
        stack = [(0, v) for v in cpi.candidates[path[0]]]
        while stack:
            i, v = stack.pop()
            if i == len(path) - 1:
                total += 1
                continue
            child = path[i + 1]
            for w in cpi.child_candidates(child, v):
                stack.append((i + 1, w))
        return total

    def test_leaf_path(self):
        data = Graph([0, 0, 1], [(0, 2), (1, 2)])
        query = Graph([0, 1], [(0, 1)])
        cpi = build_cpi(query, data, 0)
        counts = path_suffix_counts(cpi, [0, 1])
        assert counts[0] == 2  # (v0->v2), (v1->v2)
        assert counts[1] == 1  # just |u1.C| = {v2}


class TestOrderStructure:
    def test_order_is_valid(self, rng):
        for _ in range(25):
            data, query = random_instance(rng)
            cpi = build_cpi(query, data, 0)
            order = order_structure(cpi, 0, _full_vertex_set(query))
            assert order[0] == 0
            validate_matching_order(order, cpi.tree.parent, query.vertices())

    def test_core_order_prioritizes_nontree_pruning(self):
        """Figure 1: the core order must place u5 right after the cycle
        prefix so the non-tree edge (u2, u5) is checked early."""
        ex = figure1_example(20, 50)
        decomposition = cfl_decompose(ex.query)
        root = ex.q("u1")
        cpi = build_cpi(ex.query, ex.data, root)
        order = order_structure(cpi, root, decomposition.core_set)
        assert sorted(order) == sorted(decomposition.core)
        assert order[0] == root

    def test_non_tree_weight(self):
        ex = figure1_example(5, 5)
        cpi = build_cpi(ex.query, ex.data, ex.q("u1"))
        # u2 and u5 each carry the single non-tree edge (u2, u5)
        assert path_non_tree_weight(cpi, [ex.q("u1"), ex.q("u2")]) == 1
        assert path_non_tree_weight(cpi, [ex.q("u1")]) == 0


class TestEstimateTreeEmbeddings:
    def test_single_vertex(self):
        data = Graph([0, 0], [(0, 1)])
        query = Graph([0], [])
        cpi = build_cpi(query, data, 0)
        assert estimate_tree_embeddings(cpi, 0, {0}) == 2

    def test_star_tree_counts_products(self):
        # query star: center 0 (label 0) with two leaves of labels 1, 2
        query = Graph([0, 1, 2], [(0, 1), (0, 2)])
        # data: one center adjacent to two 1-labeled and three 2-labeled
        data = Graph(
            [0, 1, 1, 2, 2, 2],
            [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)],
        )
        cpi = build_cpi(query, data, 0)
        assert estimate_tree_embeddings(cpi, 0, {0, 1, 2}) == 2 * 3

    def test_restriction_drops_children(self):
        query = Graph([0, 1, 2], [(0, 1), (0, 2)])
        data = Graph([0, 1, 1, 2], [(0, 1), (0, 2), (0, 3)])
        cpi = build_cpi(query, data, 0)
        assert estimate_tree_embeddings(cpi, 0, {0, 1}) == 2
        assert estimate_tree_embeddings(cpi, 0, {0}) == 1


class TestValidateMatchingOrder:
    def test_detects_duplicates(self):
        with pytest.raises(GraphError, match="twice"):
            validate_matching_order([0, 0], [None, None])

    def test_detects_parent_violation(self):
        with pytest.raises(GraphError, match="precede"):
            validate_matching_order([1, 0], [None, 0])

    def test_detects_missing_vertices(self):
        with pytest.raises(GraphError, match="misses"):
            validate_matching_order([0], [None, 0], required=[0, 1])

"""Unit tests for the CPI structure and QueryBFSTree (Section 4.1)."""

import pytest

from repro.core import build_cpi
from repro.core.cpi import EMPTY_CANDIDATES, QueryBFSTree
from repro.graph import Graph, GraphError
from repro.workloads.paper_graphs import figure5_example, figure7_example


class TestQueryBFSTree:
    def test_figure7_levels(self):
        ex = figure7_example()
        tree = QueryBFSTree.build(ex.query, ex.q("u0"))
        level_names = [
            sorted(u for u in lvl) for lvl in tree.levels
        ]
        assert level_names == [
            [ex.q("u0")],
            sorted([ex.q("u1"), ex.q("u2")]),
            [ex.q("u3")],
        ]
        assert tree.parent[ex.q("u0")] is None
        assert tree.parent[ex.q("u1")] == ex.q("u0")
        assert tree.parent[ex.q("u3")] == ex.q("u1")  # BFS visits u1 first

    def test_figure7_nte_classification(self):
        """(u1, u2) is an S-NTE, (u2, u3) a C-NTE (Definition 5.1)."""
        ex = figure7_example()
        tree = QueryBFSTree.build(ex.query, ex.q("u0"))
        u1, u2, u3 = ex.q("u1"), ex.q("u2"), ex.q("u3")
        assert tree.is_same_level_nte(u1, u2)
        assert tree.is_cross_level_nte(u2, u3)
        assert not tree.is_same_level_nte(u2, u3)
        assert not tree.is_cross_level_nte(u1, u2)
        # tree edges are neither
        assert tree.is_tree_edge(ex.q("u0"), u1)
        assert not tree.is_same_level_nte(ex.q("u0"), u1)

    def test_non_tree_edge_counts(self):
        ex = figure7_example()
        tree = QueryBFSTree.build(ex.query, ex.q("u0"))
        assert tree.non_tree_edge_count(ex.q("u0")) == 0
        assert tree.non_tree_edge_count(ex.q("u1")) == 1
        assert tree.non_tree_edge_count(ex.q("u2")) == 2

    def test_root_to_leaf_paths(self):
        g = Graph([0, 1, 2, 3, 4], [(0, 1), (0, 2), (1, 3), (1, 4)])
        tree = QueryBFSTree.build(g, 0)
        assert tree.root_to_leaf_paths() == [[0, 1, 3], [0, 1, 4], [0, 2]]

    def test_root_to_leaf_paths_restricted(self):
        g = Graph([0, 1, 2, 3, 4], [(0, 1), (0, 2), (1, 3), (1, 4)])
        tree = QueryBFSTree.build(g, 0)
        assert tree.root_to_leaf_paths({0, 1, 3}) == [[0, 1, 3]]
        with pytest.raises(GraphError):
            tree.root_to_leaf_paths({1, 3})

    def test_rejects_disconnected(self):
        with pytest.raises(GraphError, match="connected"):
            QueryBFSTree.build(Graph([0, 0, 0], [(0, 1)]), 0)

    def test_rejects_bad_root(self):
        with pytest.raises(GraphError, match="range"):
            QueryBFSTree.build(Graph([0], []), 5)


class TestCPIStructure:
    def test_figure5_candidate_sets(self):
        """The definitional example: all A-vertices vs all B-vertices."""
        ex = figure5_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        assert sorted(cpi.candidate_list(ex.q("u0"))) == [ex.v(f"v{i}") for i in range(5)]
        assert sorted(cpi.candidate_list(ex.q("u1"))) == [ex.v(f"v{i}") for i in range(5, 10)]

    def test_figure5_adjacency_matches_data_graph(self):
        ex = figure5_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        u1 = ex.q("u1")
        assert cpi.child_candidates(u1, ex.v("v0")) == sorted([ex.v("v5"), ex.v("v8")])
        assert cpi.child_candidates(u1, ex.v("v1")) == [ex.v("v6")]
        # every CPI edge exists in the data graph
        for v_p, row in cpi.adjacency[u1].items():
            for v in row:
                assert ex.data.has_edge(v_p, v)

    def test_size_counts_candidates_and_edges(self):
        ex = figure5_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        # 5 + 5 candidates + 6 adjacency entries
        assert cpi.size() == 16

    def test_size_bound(self, rng):
        """|CPI| <= |V(q)| * (|V(G)| + |E(G)|)  (Section 4.1 bound)."""
        from repro.graph import random_connected_graph

        for _ in range(20):
            data = random_connected_graph(rng.randrange(5, 25), rng.randrange(0, 20), 3, rng)
            query = random_connected_graph(rng.randrange(2, 6), rng.randrange(0, 3), 2, rng)
            cpi = build_cpi(query, data, 0)
            bound = query.num_vertices * (data.num_vertices + data.num_edges)
            assert cpi.size() <= bound

    def test_is_empty(self):
        data = Graph([0, 1], [(0, 1)])
        query = Graph([5, 6], [(0, 1)])  # labels absent from data
        cpi = build_cpi(query, data, 0)
        assert cpi.is_empty()

    def test_candidate_counts(self):
        ex = figure5_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        assert cpi.candidate_counts() == [5, 5]

    def test_child_candidates_missing_parent(self):
        ex = figure5_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        assert cpi.child_candidates(ex.q("u1"), 999) is EMPTY_CANDIDATES

    def test_repr(self):
        ex = figure5_example()
        cpi = build_cpi(ex.query, ex.data, ex.q("u0"))
        assert "CPI(" in repr(cpi)

"""Tests for the EXPLAIN plan renderer and cardinality estimate."""

from repro.core import CFLMatch
from repro.core.explain import estimate_embeddings, explain
from repro.graph import Graph
from repro.workloads.paper_graphs import figure1_example, figure3_example
from tests.conftest import random_instance


class TestEstimate:
    def test_upper_bound_property(self, rng):
        """The CPI tree estimate never undercounts true embeddings."""
        for _ in range(25):
            data, query = random_instance(rng)
            matcher = CFLMatch(data)
            prepared = matcher.prepare(query)
            estimate = estimate_embeddings(prepared.cpi)
            exact = matcher.count(query)
            assert estimate >= exact

    def test_exact_on_paths_without_sharing(self):
        data = Graph([0, 1, 2], [(0, 1), (1, 2)])
        query = Graph([0, 1, 2], [(0, 1), (1, 2)])
        prepared = CFLMatch(data).prepare(query)
        assert estimate_embeddings(prepared.cpi) == 1

    def test_zero_when_no_candidates(self):
        data = Graph([0, 0], [(0, 1)])
        query = Graph([5, 5], [(0, 1)])
        prepared = CFLMatch(data).prepare(query)
        assert estimate_embeddings(prepared.cpi) == 0


class TestExplain:
    def test_mentions_every_section(self):
        ex = figure3_example()
        text = explain(CFLMatch(ex.data), ex.query)
        for keyword in (
            "CFL-Match plan", "decomposition:", "BFS root:", "CPI size:",
            "matching order:", "leaf plan", "estimated embeddings",
        ):
            assert keyword in text

    def test_stage_annotations(self):
        ex = figure1_example(5, 5)
        text = explain(CFLMatch(ex.data), ex.query)
        assert "[core]" in text
        assert "[forest]" in text
        assert "NEC(" in text

    def test_no_leaves_case(self, triangle_query):
        data = Graph([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        text = explain(CFLMatch(data), triangle_query)
        assert "(no leaves)" in text

    def test_variant_flags_shown(self):
        ex = figure3_example()
        text = explain(CFLMatch(ex.data, mode="cf", cpi_mode="td"), ex.query)
        assert "mode=cf" in text and "cpi=td" in text

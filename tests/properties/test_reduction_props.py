"""Property-based tests for the edge-labeled and directed reductions."""

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.directed import (
    DiGraph,
    match_directed,
    validate_directed_embedding,
)
from repro.graph.edge_labeled import (
    EdgeLabeledGraph,
    match_edge_labeled,
    validate_edge_labeled_embedding,
)


@st.composite
def edge_labeled_graphs(draw, min_vertices=1, max_vertices=6, vlabels=2, elabels=2):
    n = draw(st.integers(min_vertices, max_vertices))
    vertex_labels = tuple(
        draw(st.lists(st.integers(0, vlabels - 1), min_size=n, max_size=n))
    )
    edges = []
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.append((parent, v, draw(st.integers(0, elabels - 1))))
    existing = {(min(u, v), max(u, v)) for u, v, _ in edges}
    for _ in range(draw(st.integers(0, 3))):
        if n < 2:
            break
        u = draw(st.integers(0, n - 2))
        v = draw(st.integers(u + 1, n - 1))
        if (u, v) not in existing:
            existing.add((u, v))
            edges.append((u, v, draw(st.integers(0, elabels - 1))))
    return EdgeLabeledGraph(vertex_labels, tuple(edges))


@st.composite
def digraphs(draw, min_vertices=1, max_vertices=5, vlabels=2, alabels=2):
    n = draw(st.integers(min_vertices, max_vertices))
    vertex_labels = tuple(
        draw(st.lists(st.integers(0, vlabels - 1), min_size=n, max_size=n))
    )
    arcs = []
    seen = set()
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        if draw(st.booleans()):
            arc = (parent, v)
        else:
            arc = (v, parent)
        seen.add(arc)
        arcs.append((*arc, draw(st.integers(0, alabels - 1))))
    for _ in range(draw(st.integers(0, 3))):
        if n < 2:
            break
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            arcs.append((u, v, draw(st.integers(0, alabels - 1))))
    return DiGraph(vertex_labels, tuple(arcs))


@given(edge_labeled_graphs(max_vertices=4), edge_labeled_graphs(max_vertices=6))
def test_edge_labeled_results_are_valid_and_complete(query, data):
    got = set(match_edge_labeled(query, data))
    for emb in got:
        assert validate_edge_labeled_embedding(query, data, emb)
    # completeness against exhaustive permutation check
    from itertools import permutations

    expected = {
        perm
        for perm in permutations(range(data.num_vertices), query.num_vertices)
        if validate_edge_labeled_embedding(query, data, perm)
    }
    assert got == expected


@given(digraphs(max_vertices=4), digraphs(max_vertices=5))
def test_directed_results_are_valid_and_complete(query, data):
    got = set(match_directed(query, data))
    for emb in got:
        assert validate_directed_embedding(query, data, emb)
    from itertools import permutations

    expected = {
        perm
        for perm in permutations(range(data.num_vertices), query.num_vertices)
        if validate_directed_embedding(query, data, perm)
    }
    assert got == expected


@given(edge_labeled_graphs(min_vertices=2, max_vertices=5))
def test_edge_labeled_self_match(graph):
    """Every edge-labeled graph embeds in itself (identity mapping)."""
    identity = tuple(range(graph.num_vertices))
    assert validate_edge_labeled_embedding(graph, graph, identity)
    assert identity in set(match_edge_labeled(graph, graph))


@given(digraphs(min_vertices=2, max_vertices=4))
def test_directed_self_match(graph):
    identity = tuple(range(graph.num_vertices))
    assert validate_directed_embedding(graph, graph, identity)
    assert identity in set(match_directed(graph, graph))

"""Property-based tests on matcher correctness and API contracts."""

from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import BoostMatch, QuickSIMatch, TurboISOMatch, UllmannMatch, VF2Match
from repro.core import CFLMatch, validate_embedding
from tests.conftest import brute_force_embeddings
from tests.properties.strategies import query_data_pairs


@given(query_data_pairs())
def test_cfl_variants_equal_brute_force(pair):
    query, data = pair
    truth = brute_force_embeddings(query, data)
    for mode in ("cfl", "cf", "match"):
        got = set(CFLMatch(data, mode=mode).search(query))
        assert got == truth, mode


@given(query_data_pairs())
def test_baselines_equal_brute_force(pair):
    query, data = pair
    truth = brute_force_embeddings(query, data)
    for matcher in (
        QuickSIMatch(data), TurboISOMatch(data), UllmannMatch(data),
        VF2Match(data), BoostMatch(data),
    ):
        assert set(matcher.search(query)) == truth, matcher.name


@given(query_data_pairs())
def test_all_results_are_valid_embeddings(pair):
    query, data = pair
    for emb in CFLMatch(data).search(query):
        assert validate_embedding(query, data, emb)


@given(query_data_pairs(), st.integers(0, 10))
def test_limit_contract(pair, limit):
    query, data = pair
    matcher = CFLMatch(data)
    total = matcher.count(query)
    got = list(matcher.search(query, limit=limit))
    assert len(got) == min(limit, total)
    assert len(set(got)) == len(got)  # no duplicates


@given(query_data_pairs())
def test_count_equals_enumeration_length(pair):
    query, data = pair
    matcher = CFLMatch(data)
    assert matcher.count(query) == sum(1 for _ in matcher.search(query))


@given(query_data_pairs())
def test_boost_count_equals_enumeration(pair):
    """The m!/(m-k)! expansion arithmetic agrees with actual expansion."""
    query, data = pair
    matcher = BoostMatch(data)
    assert matcher.count(query) == sum(1 for _ in matcher.search(query))


@given(query_data_pairs())
def test_search_is_deterministic(pair):
    query, data = pair
    matcher = CFLMatch(data)
    assert list(matcher.search(query)) == list(matcher.search(query))

"""Cross-module invariants tying independent components together."""

from hypothesis import given

from repro.core import (
    CFLMatch,
    build_cpi,
    build_naive_cpi,
    estimate_embeddings,
    evaluate_order_cost,
)
from repro.baselines import QuickSIMatch

from tests.properties.strategies import query_data_pairs


@given(query_data_pairs())
def test_cost_model_final_breadth_is_embedding_count(pair):
    """B_n of the Section-2.1 model equals the true embedding count,
    for any valid connected order (here: QuickSI's QI-sequence)."""
    query, data = pair
    order, parent, _ = QuickSIMatch(data)._prepare(query)
    breakdown = evaluate_order_cost(query, data, order, parent)
    assert breakdown.breadths[-1] == CFLMatch(data).count(query)


@given(query_data_pairs())
def test_estimates_are_monotone_across_builders(pair):
    """Cardinality estimates shrink with stronger filtering and never
    undercount: naive >= top-down >= refined >= exact."""
    query, data = pair
    naive = estimate_embeddings(build_naive_cpi(query, data, 0))
    top_down = estimate_embeddings(build_cpi(query, data, 0, refine=False))
    refined = estimate_embeddings(build_cpi(query, data, 0, refine=True))
    exact = CFLMatch(data).count(query)
    assert naive >= top_down >= refined >= exact


@given(query_data_pairs())
def test_compiled_cpi_round_trips_any_builder(pair):
    """The A.2 offset representation preserves every adjacency list of
    both the naive and the refined CPI."""
    from repro.core.cpi_storage import CompiledCPI

    query, data = pair
    for cpi in (build_naive_cpi(query, data, 0), build_cpi(query, data, 0)):
        compiled = CompiledCPI.from_cpi(cpi)
        for u in query.vertices():
            p = cpi.tree.parent[u]
            if p is None:
                continue
            for i, v_p in enumerate(cpi.candidates[p]):
                assert sorted(compiled.child_vertices(u, i)) == sorted(
                    cpi.child_candidates(u, v_p)
                )


@given(query_data_pairs())
def test_stage_nodes_account_for_all_search_work(pair):
    """run()'s per-stage counters always sum to the total node count."""
    query, data = pair
    report = CFLMatch(data).run(query)
    assert report.stage_nodes is not None
    assert sum(report.stage_nodes.values()) == report.stats.nodes

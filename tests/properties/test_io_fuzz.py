"""Fuzz tests: parsers must raise GraphError (never crash) on any input."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import GraphError, loads_edge_list, loads_graph


@given(st.text(max_size=300))
def test_loads_graph_never_crashes(text):
    try:
        graph = loads_graph(text)
    except GraphError:
        return
    # if it parsed, it must be a structurally valid graph
    assert graph.num_vertices >= 0
    assert all(lab >= 0 or lab != -1 for lab in graph.labels)


@given(st.text(max_size=300))
def test_loads_edge_list_never_crashes(text):
    try:
        graph = loads_edge_list(text)
    except GraphError:
        return
    assert graph.num_vertices >= 0


@given(
    st.lists(
        st.tuples(
            st.sampled_from("tve#x"),
            st.lists(st.integers(-3, 8), min_size=0, max_size=4),
        ),
        max_size=12,
    )
)
def test_structured_fuzz(records):
    """Token streams that look like the format but may violate it."""
    text = "\n".join(
        tag + " " + " ".join(str(x) for x in nums) for tag, nums in records
    )
    try:
        loads_graph(text)
    except GraphError:
        pass


def test_negative_vertex_count_rejected():
    with pytest.raises(GraphError):
        loads_graph("t -5 0\n")


def test_non_integer_tokens_rejected():
    with pytest.raises(GraphError, match="integer"):
        loads_graph("t two 1\n")
    with pytest.raises(GraphError, match="integer"):
        loads_edge_list("a b\n")

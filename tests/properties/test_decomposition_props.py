"""Property-based tests on the CFL decomposition and k-core."""

from hypothesis import given

from repro.core import cfl_decompose
from repro.graph import core_numbers, k_core_vertices, two_core_vertices

from tests.properties.strategies import connected_graphs


@given(connected_graphs())
def test_two_core_equals_bucket_kcore(g):
    assert two_core_vertices(g) == k_core_vertices(g, 2)


@given(connected_graphs())
def test_core_numbers_bounded_by_degree(g):
    numbers = core_numbers(g)
    for v in g.vertices():
        assert 0 <= numbers[v] <= g.degree(v)


@given(connected_graphs())
def test_decomposition_partitions_query(q):
    d = cfl_decompose(q)
    assert sorted(d.core + d.forest + d.leaves) == list(q.vertices())
    assert not d.core_set & d.forest_set
    assert not d.core_set & d.leaf_set
    assert not d.forest_set & d.leaf_set


@given(connected_graphs(min_vertices=2))
def test_leaves_have_degree_one_and_forest_at_least_two(q):
    d = cfl_decompose(q)
    for u in d.leaves:
        assert q.degree(u) == 1
    for u in d.forest:
        assert q.degree(u) >= 2


@given(connected_graphs(min_vertices=2))
def test_core_plus_forest_is_connected(q):
    """q[V_C u V_T] must be connected for a connected matching order."""
    d = cfl_decompose(q)
    combined, _ = q.induced_subgraph(d.core + d.forest)
    assert combined.is_connected()


@given(connected_graphs(min_vertices=2))
def test_non_tree_edges_live_in_core(q):
    """Lemma 3.1: every non-tree edge of any BFS tree joins core vertices."""
    d = cfl_decompose(q)
    core = d.core_set
    root = d.core[0]
    parent, _ = q.bfs_tree(root)
    for u, v in q.edges():
        if parent[u] == v or parent[v] == u:
            continue
        assert u in core and v in core

"""Property-based tests on CPI soundness (Theorem 4.1 / Lemmas 5.2-5.3)."""

from hypothesis import given

from repro.core import build_cpi, build_naive_cpi
from tests.conftest import brute_force_embeddings
from tests.properties.strategies import query_data_pairs


@given(query_data_pairs())
def test_cpi_soundness_all_builders(pair):
    """Every true embedding image survives in u.C and in the adjacency
    lists, for the naive, top-down, and refined builders alike."""
    query, data = pair
    truth = brute_force_embeddings(query, data)
    builders = [
        build_naive_cpi(query, data, 0),
        build_cpi(query, data, 0, refine=False),
        build_cpi(query, data, 0, refine=True),
    ]
    for cpi in builders:
        for emb in truth:
            for u in query.vertices():
                assert emb[u] in cpi.cand_sets[u]
                p = cpi.tree.parent[u]
                if p is not None:
                    assert emb[u] in cpi.child_candidates(u, emb[p])


@given(query_data_pairs())
def test_refinement_monotone(pair):
    """Bottom-up refinement only ever shrinks candidate sets."""
    query, data = pair
    td = build_cpi(query, data, 0, refine=False)
    full = build_cpi(query, data, 0, refine=True)
    for u in query.vertices():
        assert set(full.candidates[u]) <= set(td.candidates[u])
        assert set(td.candidates[u]) <= set(
            build_naive_cpi(query, data, 0).candidates[u]
        )


@given(query_data_pairs())
def test_cpi_edges_exist_in_data(pair):
    """No false edges: every CPI adjacency entry is a data edge with
    matching candidate membership."""
    query, data = pair
    cpi = build_cpi(query, data, 0)
    for u in query.vertices():
        for v_p, row in cpi.adjacency[u].items():
            for v in row:
                assert data.has_edge(v_p, v)
                assert v in cpi.cand_sets[u]


@given(query_data_pairs())
def test_candidates_pass_label_filter(pair):
    query, data = pair
    cpi = build_cpi(query, data, 0)
    for u in query.vertices():
        for v in cpi.candidates[u]:
            assert data.label(v) == query.label(u)
            assert data.degree(v) >= query.degree(u)


@given(query_data_pairs())
def test_cpi_size_within_bound(pair):
    """Section 4.1: |CPI| = O(|V(q)| x |E(G)|) — checked concretely."""
    query, data = pair
    cpi = build_cpi(query, data, 0)
    bound = query.num_vertices * (data.num_vertices + 2 * max(data.num_edges, 1))
    assert cpi.size() <= bound

"""Hypothesis strategies for random labeled graphs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph import Graph


@st.composite
def connected_graphs(draw, min_vertices=1, max_vertices=12, max_labels=3, max_extra_edges=8):
    """A connected vertex-labeled graph: random tree + extra edges."""
    n = draw(st.integers(min_vertices, max_vertices))
    labels = draw(
        st.lists(st.integers(0, max_labels - 1), min_size=n, max_size=n)
    )
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.add((parent, v))
    if n >= 2:
        extra_count = draw(st.integers(0, max_extra_edges))
        for _ in range(extra_count):
            u = draw(st.integers(0, n - 2))
            v = draw(st.integers(u + 1, n - 1))
            edges.add((u, v))
    return Graph(labels, sorted(edges))


@st.composite
def query_data_pairs(draw, max_query=5, max_data=12, max_labels=3):
    """A (query, data) pair sharing a label alphabet."""
    query = draw(connected_graphs(min_vertices=1, max_vertices=max_query, max_labels=max_labels))
    data = draw(connected_graphs(min_vertices=1, max_vertices=max_data, max_labels=max_labels))
    return query, data

"""Property-based tests on the Graph substrate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.graph import dumps_edge_list, dumps_graph, loads_edge_list, loads_graph

from tests.properties.strategies import connected_graphs


@given(connected_graphs())
def test_degree_sum_is_twice_edges(g):
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges


@given(connected_graphs())
def test_nlf_sums_to_degree(g):
    for v in g.vertices():
        assert sum(g.nlf(v).values()) == g.degree(v)


@given(connected_graphs())
def test_mnd_is_max_neighbor_degree(g):
    for v in g.vertices():
        expected = max((g.degree(w) for w in g.neighbors(v)), default=0)
        assert g.mnd(v) == expected


@given(connected_graphs())
def test_label_index_partitions_vertices(g):
    seen = sorted(v for vs in g.label_index().values() for v in vs)
    assert seen == list(g.vertices())


@given(connected_graphs())
def test_bfs_tree_levels_increase_by_one(g):
    parent, level = g.bfs_tree(0)
    for v in g.vertices():
        p = parent[v]
        if p is not None and p != -1:
            assert level[v] == level[p] + 1
    # connected: every vertex reached
    assert all(level[v] >= 1 for v in g.vertices())


@given(connected_graphs(), st.data())
def test_induced_subgraph_edges_match(g, data):
    if g.num_vertices == 0:
        return
    subset = data.draw(
        st.sets(st.integers(0, g.num_vertices - 1), min_size=1, max_size=g.num_vertices)
    )
    sub, kept = g.induced_subgraph(subset)
    assert kept == sorted(subset)
    back = {i: v for i, v in enumerate(kept)}
    for a, b in sub.edges():
        assert g.has_edge(back[a], back[b])
    # every in-subset edge of g survives
    inside = set(kept)
    expected = sum(
        1 for u, v in g.edges() if u in inside and v in inside
    )
    assert sub.num_edges == expected


@given(connected_graphs())
def test_serialization_round_trips(g):
    assert loads_graph(dumps_graph(g)) == g
    assert loads_edge_list(dumps_edge_list(g)) == g
